"""Intraprocedural abstract interpretation over function ASTs.

This module is the whole-program half of the static-analysis suite: where
the PR-1 passes match single statements, the passes built on top of this
engine *propagate* facts through assignments, branches and loops.  Two
abstract domains share one walker:

* :class:`DimInterpreter` — unit-dimension inference.  Values are tagged
  with a physical dimension (seconds, microseconds, bytes, bits, bits/s,
  bytes/s) seeded from ``repro.units`` constructor calls (``usec``, ``kb``,
  ``Mbps``, …), ``Size``/``Rate`` annotations, module-level constants and
  conservative name patterns (``*_bps``, ``nbytes``, ``env.now``).
  Cross-dimension arithmetic, seconds↔µs and bytes↔bits mixing, ambiguous
  returns and bad ``timeout``/``schedule`` delays are recorded as
  :class:`DimFinding` records; ``repro.analysis.passes.dim`` turns them
  into DIM rule violations.
* :class:`ForwardAnalysis` subclasses in ``repro.analysis.passes.sched``
  track container kinds (set / list / dict) to find unordered iteration
  feeding the event scheduler.

The interpretation is deliberately unsound-but-useful: branches are merged
with a flat join (conflicting facts become *unknown*), loops run once, and
calls are only interpreted through an allowlist of ``repro.units`` helpers.
Unknown never produces a finding, so imprecision costs recall, not false
positives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.analysis.passes.base import ModuleContext, functions_of

__all__ = [
    "BITS",
    "BPS",
    "BYTES",
    "BYTES_PER_S",
    "DimFinding",
    "DimInterpreter",
    "ForwardAnalysis",
    "SECONDS",
    "USEC",
    "classify_mix",
]

AnyFunction = "ast.FunctionDef | ast.AsyncFunctionDef"

# --- the dimension domain ----------------------------------------------------
SECONDS = "seconds"
USEC = "microseconds"
BYTES = "bytes"
BITS = "bits"
BPS = "bits/s"
BYTES_PER_S = "bytes/s"

#: dims that share a quantity but differ by a scale factor; mixing them is
#: the classic silent corruption (off by 1e6 / off by 8)
_TIME_SCALES = frozenset({SECONDS, USEC})
_DATA_SCALES = frozenset({BYTES, BITS})
_RATE_SCALES = frozenset({BPS, BYTES_PER_S})


def classify_mix(a: str, b: str) -> str:
    """Which family of mixing a conflict between dims ``a`` and ``b`` is.

    Returns ``"time-scale"`` (seconds vs µs), ``"data-scale"`` (bytes vs
    bits, bits/s vs bytes/s) or ``"mix"`` (unrelated dimensions).
    """
    pair = {a, b}
    if pair <= _TIME_SCALES:
        return "time-scale"
    if pair <= _DATA_SCALES or pair <= _RATE_SCALES:
        return "data-scale"
    return "mix"


# --- seeds -------------------------------------------------------------------
#: fully resolved callable -> dimension of its return value
_CALL_DIMS: Dict[str, Optional[str]] = {
    "repro.units.usec": SECONDS,
    "repro.units.msec": SECONDS,
    "repro.units.transfer_seconds": SECONDS,
    "repro.units.to_usec": USEC,
    "repro.units.to_msec": None,  # milliseconds: not tracked
    "repro.units.kb": BYTES,
    "repro.units.mb": BYTES,
    "repro.units.parse_size": BYTES,
    "repro.units.bps": BPS,
    "repro.units.Kbps": BPS,
    "repro.units.Mbps": BPS,
    "repro.units.Gbps": BPS,
    "repro.units.bits_per_second": BPS,
    "repro.units.bytes_per_second": BYTES_PER_S,
    "repro.units.goodput_mbps": None,  # Mbit/s display value, not bits/s
}

#: unambiguous helper names matched by tail when import resolution fails
#: (e.g. a ``units.Mbps`` attribute on a locally bound module object)
_CALL_TAILS: Dict[str, str] = {
    "Kbps": BPS,
    "Mbps": BPS,
    "Gbps": BPS,
    "usec": SECONDS,
    "to_usec": USEC,
    "transfer_seconds": SECONDS,
    "bits_per_second": BPS,
    "bytes_per_second": BYTES_PER_S,
}

#: fully resolved constant -> its dimension
_CONST_DIMS: Dict[str, str] = {
    "repro.units.KB": BYTES,
    "repro.units.MB": BYTES,
    "repro.units.GB": BYTES,
}

#: builtins that return (one of) their arguments unchanged, dimensionally
_PASSTHROUGH_CALLS = frozenset({"int", "float", "abs", "round", "max", "min"})

#: annotation spellings -> dimension
_ANNOTATION_DIMS: Dict[str, str] = {
    "Size": BYTES,
    "Rate": BPS,
    "units.Size": BYTES,
    "units.Rate": BPS,
    "repro.units.Size": BYTES,
    "repro.units.Rate": BPS,
}

#: conservative name patterns, applied to parameter names and attribute
#: reads; ordered, first match wins
_NAME_SEEDS: Sequence[tuple[re.Pattern, str]] = (
    (re.compile(r"(^|_)n?bytes$|_bytes$"), BYTES),
    (re.compile(r"(^|_)n?bits$|_bits$"), BITS),
    (re.compile(r"_bps$"), BPS),
    (re.compile(r"(^|_)seconds$"), SECONDS),
    (re.compile(r"_usec$"), USEC),
)

#: attribute spellings denoting the current simulation time (seconds)
_TIME_ATTRS = frozenset({"now"})


def name_seed(name: str) -> Optional[str]:
    """Dimension suggested by a bare identifier, or ``None``."""
    stripped = name.lstrip("_")
    for pattern, dim in _NAME_SEEDS:
        if pattern.search(stripped):
            return dim
    return None


def annotation_dim(ctx: ModuleContext, node: Optional[ast.expr]) -> Optional[str]:
    """Dimension promised by a type annotation, or ``None``."""
    if node is None:
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        resolved = ctx.resolve(node)
        if resolved in _ANNOTATION_DIMS:
            return _ANNOTATION_DIMS[resolved]
        return _ANNOTATION_DIMS.get(resolved.rsplit(".", 1)[-1])
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation like "Rate | float": a single dimensioned token
        # decides; two different ones would be ambiguous, so bail out.
        tokens = re.findall(r"[A-Za-z_.]+", node.value)
        dims = {_ANNOTATION_DIMS[t] for t in tokens if t in _ANNOTATION_DIMS}
        return next(iter(dims)) if len(dims) == 1 else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_dim(ctx, node.left)
        right = annotation_dim(ctx, node.right)
        if left and right:
            return left if left == right else None
        return left or right
    if isinstance(node, ast.Subscript):
        # Optional[Size] / Annotated[Rate, ...]: the head decides
        head = node.value
        if isinstance(head, (ast.Name, ast.Attribute)):
            tail = ctx.resolve(head).rsplit(".", 1)[-1]
            if tail in ("Optional", "Final", "Annotated", "ClassVar"):
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return annotation_dim(ctx, inner)
    return None


def _mentions_per(node: ast.expr) -> bool:
    """True when the expression names a per-something ratio (``*_per_*``)."""
    for sub in ast.walk(node):
        spelling = ""
        if isinstance(sub, ast.Name):
            spelling = sub.id
        elif isinstance(sub, ast.Attribute):
            spelling = sub.attr
        if "per_" in spelling.lower():
            return True
    return False


def _literal_value(node: ast.expr) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_value(node.operand)
        return -inner if inner is not None else None
    return None


def target_key(node: ast.expr) -> Optional[str]:
    """Environment key for an assignment target / lookup expression.

    Locals map by name; short attribute chains of plain names
    (``flow.rate_bps``, ``self.env.now``) map by their dotted spelling so
    facts survive storing through an attribute.  Anything else (calls,
    subscripts) has no stable key.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
        if len(parts) > 3:
            return None
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# --- the generic forward walker ----------------------------------------------
class ForwardAnalysis:
    """One forward pass over a statement list with branch joins.

    The abstract value domain is whatever the subclass's :meth:`eval` hooks
    return; ``None`` is the universal *unknown*.  Branches of ``if`` /
    ``try`` are interpreted independently from the pre-state and merged
    with :meth:`join`; loop bodies run once and merge with the pre-state.
    That is enough to *report* on every reachable statement while keeping
    the walk linear in the program size.
    """

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx

    # -- hooks for subclasses --------------------------------------------------
    def eval(self, node: Optional[ast.expr], env: Dict[str, Optional[str]]) -> Optional[str]:
        if node is None:
            return None
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is not None:
            return method(node, env)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return None

    def join(self, a: Optional[str], b: Optional[str]) -> Optional[str]:
        return a if a == b else None

    def on_return(
        self, stmt: ast.Return, value: Optional[str], env: Dict[str, Optional[str]]
    ) -> None:
        """Called for every ``return`` statement (subclass hook)."""

    def on_for(
        self, stmt: "ast.For | ast.AsyncFor", iter_value: Optional[str],
        env: Dict[str, Optional[str]],
    ) -> None:
        """Called for every ``for`` loop before its body runs (subclass hook)."""

    def seed_params(self, func: ast.AST, env: Dict[str, Optional[str]]) -> None:
        """Seed the environment from the function signature (subclass hook)."""

    def element_of(self, iter_value: Optional[str]) -> Optional[str]:
        """Abstract value of one element of an iterated value."""
        return None

    # -- entry points ----------------------------------------------------------
    def analyze_function(
        self, func: AnyFunction, base_env: Optional[Dict[str, Optional[str]]] = None
    ) -> Dict[str, Optional[str]]:
        env: Dict[str, Optional[str]] = dict(base_env or {})
        for arg in _all_args(func.args):
            env.pop(arg.arg, None)
        self.seed_params(func, env)
        self.exec_block(func.body, env)
        return env

    def analyze_module_body(self) -> Dict[str, Optional[str]]:
        """Interpret module-level statements (function/class bodies skipped)."""
        env: Dict[str, Optional[str]] = {}
        self.exec_block(self.ctx.tree.body, env)
        return env

    # -- statement execution ---------------------------------------------------
    def exec_block(self, stmts: Sequence[ast.stmt], env: Dict[str, Optional[str]]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: Dict[str, Optional[str]]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.assign(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            value = self.value_from_annotation(stmt.annotation, env)
            if stmt.value is not None:
                inferred = self.eval(stmt.value, env)
                value = value if value is not None else inferred
            self.assign(stmt.target, stmt.value, value, env)
        elif isinstance(stmt, ast.AugAssign):
            self.exec_augassign(stmt, env)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, env) if stmt.value is not None else None
            self.on_return(stmt, value, env)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self.exec_block(stmt.body, then_env)
            self.exec_block(stmt.orelse, else_env)
            self._replace(env, self.merge(then_env, else_env))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self.eval(stmt.iter, env)
            self.on_for(stmt, iter_value, env)
            body_env = dict(env)
            self.assign(stmt.target, None, self.element_of(iter_value), body_env)
            self.exec_block(stmt.body, body_env)
            self.exec_block(stmt.orelse, body_env)
            self._replace(env, self.merge(env, body_env))
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            self.exec_block(stmt.orelse, body_env)
            self._replace(env, self.merge(env, body_env))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, None, value, env)
            self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            pre = dict(env)
            self.exec_block(stmt.body, env)
            merged = dict(env)
            for handler in stmt.handlers:
                handler_env = dict(pre)
                if handler.name:
                    handler_env[handler.name] = None
                self.exec_block(handler.body, handler_env)
                merged = self.merge(merged, handler_env)
            self._replace(env, merged)
            self.exec_block(stmt.orelse, env)
            self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested scopes are analyzed separately (functions_of); the
            # defined name itself carries no dimension.
            env.pop(stmt.name, None)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                key = target_key(target)
                if key is not None:
                    env.pop(key, None)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
        elif isinstance(
            stmt,
            (ast.Pass, ast.Break, ast.Continue, ast.Import, ast.ImportFrom,
             ast.Global, ast.Nonlocal),
        ):
            pass
        else:  # match statements and friends: evaluate expressions only
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child, env)

    def exec_augassign(self, stmt: ast.AugAssign, env: Dict[str, Optional[str]]) -> None:
        self.eval(stmt.value, env)
        key = target_key(stmt.target)
        if key is not None and key in env:
            env[key] = self.join(env[key], env[key])

    def assign(
        self,
        target: ast.expr,
        value_node: Optional[ast.expr],
        value: Optional[str],
        env: Dict[str, Optional[str]],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            elements: List[Optional[ast.expr]] = [None] * len(target.elts)
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                elements = list(value_node.elts)
            for sub_target, sub_node in zip(target.elts, elements):
                sub_value = self.eval(sub_node, env) if sub_node is not None else None
                self.assign(sub_target, sub_node, sub_value, env)
            return
        if isinstance(target, ast.Starred):
            self.assign(target.value, None, None, env)
            return
        key = target_key(target)
        if key is not None:
            env[key] = value

    def value_from_annotation(
        self, annotation: Optional[ast.expr], env: Dict[str, Optional[str]]
    ) -> Optional[str]:
        return None

    def merge(
        self, env_a: Dict[str, Optional[str]], env_b: Dict[str, Optional[str]]
    ) -> Dict[str, Optional[str]]:
        merged: Dict[str, Optional[str]] = {}
        for key in env_a.keys() | env_b.keys():
            merged[key] = self.join(env_a.get(key), env_b.get(key))
        return merged

    @staticmethod
    def _replace(env: Dict[str, Optional[str]], new_env: Dict[str, Optional[str]]) -> None:
        env.clear()
        env.update(new_env)


def _all_args(args: ast.arguments) -> Iterator[ast.arg]:
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        yield arg
    if args.vararg:
        yield args.vararg
    if args.kwarg:
        yield args.kwarg


# --- the dimension interpreter -----------------------------------------------
@dataclass(frozen=True)
class DimFinding:
    """One dimension conflict, with a rendered message."""

    line: int
    #: "mix" | "time-scale" | "data-scale" | "ambiguous-return" | "negative-delay"
    kind: str
    message: str


class DimInterpreter(ForwardAnalysis):
    """Unit-dimension inference over one module.

    :meth:`analyze` interprets the module body first (so module-level
    constants like ``TCP_STACK_ONEWAY = usec(12)`` seed every function),
    then every function independently, and returns the accumulated
    :class:`DimFinding` records.
    """

    #: delay-position call sites that must receive seconds; maps the callee
    #: attribute/name to the positional index of the delay argument
    _DELAY_SLOTS = {"timeout": 0, "schedule": 1, "_schedule": 2}

    def __init__(self, ctx: ModuleContext):
        super().__init__(ctx)
        self.findings: List[DimFinding] = []
        self._returns: List[tuple[int, str]] = []

    # -- public API ------------------------------------------------------------
    def analyze(self) -> List[DimFinding]:
        module_env = self.analyze_module_body()
        for func in functions_of(self.ctx.tree):
            self._returns = []
            self.analyze_function(func, base_env=module_env)
            self._check_return_ambiguity(func)
        return sorted(set(self.findings), key=lambda f: (f.line, f.kind, f.message))

    # -- seeding ---------------------------------------------------------------
    def seed_params(self, func: ast.AST, env: Dict[str, Optional[str]]) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in _all_args(func.args):
            dim = annotation_dim(self.ctx, arg.annotation) or name_seed(arg.arg)
            if dim is not None:
                env[arg.arg] = dim

    def value_from_annotation(
        self, annotation: Optional[ast.expr], env: Dict[str, Optional[str]]
    ) -> Optional[str]:
        return annotation_dim(self.ctx, annotation)

    # -- expression evaluation ---------------------------------------------------
    def _eval_Constant(self, node: ast.Constant, env: Dict[str, Optional[str]]) -> Optional[str]:
        return None  # bare literals are dimension-polymorphic

    def _eval_Name(self, node: ast.Name, env: Dict[str, Optional[str]]) -> Optional[str]:
        if node.id in env:
            return env[node.id]
        resolved = self.ctx.resolve(node)
        if resolved in _CONST_DIMS:
            return _CONST_DIMS[resolved]
        return name_seed(node.id)

    def _eval_Attribute(self, node: ast.Attribute, env: Dict[str, Optional[str]]) -> Optional[str]:
        key = target_key(node)
        if key is not None and key in env:
            return env[key]
        self.eval(node.value, env)
        resolved = self.ctx.resolve(node)
        if resolved in _CONST_DIMS:
            return _CONST_DIMS[resolved]
        if node.attr in _TIME_ATTRS:
            return SECONDS
        return name_seed(node.attr)

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: Dict[str, Optional[str]]) -> Optional[str]:
        value = self.eval(node.operand, env)
        return value if isinstance(node.op, (ast.USub, ast.UAdd)) else None

    def _eval_BoolOp(self, node: ast.BoolOp, env: Dict[str, Optional[str]]) -> Optional[str]:
        values = [self.eval(v, env) for v in node.values]
        known = {v for v in values if v is not None}
        return next(iter(known)) if len(known) == 1 else None

    def _eval_IfExp(self, node: ast.IfExp, env: Dict[str, Optional[str]]) -> Optional[str]:
        self.eval(node.test, env)
        return self.join(self.eval(node.body, env), self.eval(node.orelse, env))

    def _eval_NamedExpr(self, node: ast.NamedExpr, env: Dict[str, Optional[str]]) -> Optional[str]:
        value = self.eval(node.value, env)
        self.assign(node.target, node.value, value, env)
        return value

    def _eval_Await(self, node: ast.Await, env: Dict[str, Optional[str]]) -> Optional[str]:
        return self.eval(node.value, env)

    def _eval_Yield(self, node: ast.Yield, env: Dict[str, Optional[str]]) -> Optional[str]:
        self.eval(node.value, env)
        return None

    def _eval_YieldFrom(self, node: ast.YieldFrom, env: Dict[str, Optional[str]]) -> Optional[str]:
        self.eval(node.value, env)
        return None

    def _eval_Lambda(self, node: ast.Lambda, env: Dict[str, Optional[str]]) -> Optional[str]:
        return None  # separate scope; not interpreted

    def _eval_Compare(self, node: ast.Compare, env: Dict[str, Optional[str]]) -> Optional[str]:
        operands = [self.eval(node.left, env)]
        operands.extend(self.eval(comparator, env) for comparator in node.comparators)
        known = [d for d in operands if d is not None]
        for first, second in zip(known, known[1:]):
            if first != second:
                self._report_mix(node, first, second, "compared with")
        return None

    def _eval_BinOp(self, node: ast.BinOp, env: Dict[str, Optional[str]]) -> Optional[str]:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            return self._combine_additive(node, left, right)
        if isinstance(op, ast.Mult):
            return self._combine_mult(node, left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._combine_div(node, left, right)
        if isinstance(op, ast.Mod):
            return left
        return None

    def _eval_Call(self, node: ast.Call, env: Dict[str, Optional[str]]) -> Optional[str]:
        arg_values = [self.eval(arg, env) for arg in node.args]
        kwarg_values = {
            kw.arg: self.eval(kw.value, env) for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.eval(kw.value, env)
        self._check_delay_call(node, arg_values, kwarg_values)

        resolved = self.ctx.resolve(node.func)
        if resolved in _CALL_DIMS:
            return _CALL_DIMS[resolved]
        tail = resolved.rsplit(".", 1)[-1] if resolved else ""
        if tail in _CALL_TAILS:
            return _CALL_TAILS[tail]
        if resolved in _PASSTHROUGH_CALLS:
            known = {v for v in arg_values if v is not None}
            return next(iter(known)) if len(known) == 1 else None
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "copy" and not node.args:
                return self.eval(node.func.value, env)
            self.eval(node.func.value, env)
        return None

    # -- dimension algebra -------------------------------------------------------
    def _combine_additive(
        self, node: ast.BinOp, left: Optional[str], right: Optional[str]
    ) -> Optional[str]:
        if left is not None and right is not None:
            if left == right:
                return left
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self._report_mix(node, left, right, f"combined with `{op}`")
            return None
        return left if left is not None else right

    def _combine_mult(
        self, node: ast.BinOp, left: Optional[str], right: Optional[str]
    ) -> Optional[str]:
        # bytes * 8 is the idiomatic bytes->bits conversion
        if left == BYTES and _literal_value(node.right) == 8.0:
            return BITS
        if right == BYTES and _literal_value(node.left) == 8.0:
            return BITS
        # A factor named per_* (per_byte_overhead, cost_per_hop) is a ratio:
        # multiplying by it changes the dimension in a way we cannot see.
        if _mentions_per(node.left) or _mentions_per(node.right):
            return None
        if left is None:
            return right  # scaling by a dimensionless factor
        if right is None:
            return left
        pair = {left, right}
        if pair == {SECONDS, BPS}:
            return BITS
        if pair == {SECONDS, BYTES_PER_S}:
            return BYTES
        if USEC in pair and pair & ({SECONDS} | _RATE_SCALES):
            self._report_mix(node, left, right, "multiplied", kind="time-scale")
            return None
        return None  # other dimensioned products: untracked, silent

    def _combine_div(
        self, node: ast.BinOp, left: Optional[str], right: Optional[str]
    ) -> Optional[str]:
        if left == BITS and _literal_value(node.right) == 8.0:
            return BYTES
        if left is None or right is None:
            # Dividing by an unknown may change the dimension (bits / rate
            # is a time); stay silent and unknown.
            return None
        if left == right:
            return None  # a dimensionless ratio
        if left == BYTES and right == SECONDS:
            return BYTES_PER_S
        if left == BITS and right == SECONDS:
            return BPS
        if left == BYTES and right == BYTES_PER_S:
            return SECONDS
        if left == BITS and right == BPS:
            return SECONDS
        if left == BYTES and right == BPS:
            self._report_mix(
                node, left, right, "divided", kind="data-scale",
                note="; byte counts must be converted to bits (*8) before dividing by a bits/s rate",
            )
            return SECONDS
        if left == BITS and right == BYTES_PER_S:
            self._report_mix(node, left, right, "divided", kind="data-scale")
            return SECONDS
        if {left, right} <= _TIME_SCALES:
            self._report_mix(node, left, right, "divided", kind="time-scale")
            return None
        if right == USEC and left in _DATA_SCALES:
            self._report_mix(node, left, right, "divided", kind="time-scale")
            return None
        return None

    # -- findings ----------------------------------------------------------------
    def _report_mix(
        self,
        node: ast.AST,
        left: str,
        right: str,
        verb: str,
        kind: Optional[str] = None,
        note: str = "",
    ) -> None:
        kind = kind or classify_mix(left, right)
        self.findings.append(
            DimFinding(
                getattr(node, "lineno", 1),
                kind,
                f"{left} {verb} {right}{note}",
            )
        )

    def _check_delay_call(
        self,
        node: ast.Call,
        arg_values: List[Optional[str]],
        kwarg_values: Dict[str, Optional[str]],
    ) -> None:
        if isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        elif isinstance(node.func, ast.Name):
            callee = node.func.id
        else:
            return
        if callee == "Timeout":
            position = 1
        elif callee in self._DELAY_SLOTS:
            position = self._DELAY_SLOTS[callee]
        else:
            return

        delay_node: Optional[ast.expr] = None
        delay_dim: Optional[str] = None
        if position < len(node.args):
            delay_node = node.args[position]
            delay_dim = arg_values[position]
        else:
            for kw in node.keywords:
                if kw.arg == "delay":
                    delay_node = kw.value
                    delay_dim = kwarg_values.get("delay")
                    break
        if delay_node is None:
            return
        literal = _literal_value(delay_node)
        if literal is not None and literal < 0:
            self.findings.append(
                DimFinding(
                    delay_node.lineno,
                    "negative-delay",
                    f"literal negative delay {literal!r} passed to `{callee}`"
                    " (events cannot fire in the past; Environment._schedule raises)",
                )
            )
        if delay_dim is not None and delay_dim != SECONDS:
            self.findings.append(
                DimFinding(
                    delay_node.lineno,
                    classify_mix(delay_dim, SECONDS),
                    f"{delay_dim} value passed as the seconds delay of `{callee}`",
                )
            )

    def _check_return_ambiguity(self, func: AnyFunction) -> None:
        dims = {dim for _line, dim in self._returns}
        if len(dims) < 2:
            return
        lines = sorted({line for line, _dim in self._returns})
        self.findings.append(
            DimFinding(
                func.lineno,
                "ambiguous-return",
                f"`{func.name}` returns {', '.join(sorted(dims))} on different "
                f"paths (returns at lines {', '.join(map(str, lines))})",
            )
        )

    def on_return(
        self, stmt: ast.Return, value: Optional[str], env: Dict[str, Optional[str]]
    ) -> None:
        if value is not None:
            self._returns.append((stmt.lineno, value))
