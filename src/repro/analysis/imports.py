"""Static import-graph analysis of the ``repro`` package.

The result cache (:mod:`repro.runner.cache`) keys every artifact by a
digest of the source code that could have influenced it.  Digesting the
whole tree is safe but maximally pessimistic: touching a docstring in
``obs/report.py`` would invalidate every cached simulation shard.  This
module computes, per module, the *import closure* — the set of package
modules reachable from it through ``import``/``from ... import``
statements anywhere in its AST — so a shard's cache key folds exactly the
code its worker can execute, and nothing else.

Resolution rules (deliberately static, mirroring what the interpreter
does for the import forms this codebase uses):

* ``import repro.x.y`` and ``from repro.x.y import name`` depend on
  ``repro.x.y``;
* ``from repro.x import y`` depends on the submodule ``repro.x.y`` when
  one exists, else on ``repro.x`` itself (a plain attribute import);
* relative imports (``from .base import ...``) resolve against the
  importing module's package;
* imports of anything outside the package (stdlib, numpy) are ignored.

Two accepted approximations, documented because the cache's correctness
leans on them: package ``__init__`` side effects beyond re-exports are
assumed benign (``from repro.experiments import fig10`` records only
``fig10``, not the package initialiser that also runs), and dynamic
imports (``importlib.import_module``) are invisible — the one dynamic
site that matters, the shard-runner resolver in :mod:`repro.runner.pool`,
is handled by using the runner's own module as the closure root.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Iterable, Mapping, Optional

#: the package this analyser understands
DEFAULT_PACKAGE = "repro"

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent  # src/repro


def _module_name(root: Path, path: Path, package: str) -> str:
    """Dotted module name of ``path`` relative to the package ``root``."""
    rel = path.relative_to(root).with_suffix("")
    parts = [package, *rel.parts]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


class ImportGraph:
    """Module -> imported-modules edges for one package tree.

    ``overlay`` maps dotted module names to replacement source bytes; it
    exists so tests can ask "what would the closure digests be if this
    file changed" without touching the real tree.
    """

    def __init__(
        self,
        package_root: "Path | None" = None,
        package: str = DEFAULT_PACKAGE,
        overlay: Optional[Mapping[str, bytes]] = None,
    ) -> None:
        self.root = Path(package_root) if package_root is not None else _PACKAGE_ROOT
        self.package = package
        self.overlay = dict(overlay or {})
        self.files: dict[str, Path] = {
            _module_name(self.root, path, package): path
            for path in sorted(self.root.rglob("*.py"))
        }
        self._sources: dict[str, bytes] = {}
        self._edges: dict[str, frozenset[str]] = {}
        self._closures: dict[str, frozenset[str]] = {}
        self._file_digests: dict[str, str] = {}

    # -- sources ---------------------------------------------------------------
    def source(self, module: str) -> bytes:
        """Raw bytes of a module (the overlay wins over the tree)."""
        if module in self.overlay:
            return self.overlay[module]
        if module not in self._sources:
            self._sources[module] = self.files[module].read_bytes()
        return self._sources[module]

    def __contains__(self, module: str) -> bool:
        return module in self.files

    # -- edges -----------------------------------------------------------------
    def imports_of(self, module: str) -> frozenset[str]:
        """Package modules imported by ``module`` (anywhere in its AST)."""
        if module not in self._edges:
            self._edges[module] = frozenset(self._resolve_imports(module))
        return self._edges[module]

    def _resolve_imports(self, module: str) -> Iterable[str]:
        try:
            tree = ast.parse(self.source(module))
        except SyntaxError:
            # An unparsable module has no resolvable edges; its own file
            # digest still changes with its bytes, so caching stays sound.
            return
        # the package a relative import resolves against
        is_pkg = self.files[module].name == "__init__.py"
        pkg_parts = module.split(".") if is_pkg else module.split(".")[:-1]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._resolve_absolute(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative: from .x import y
                    base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                    base = ".".join(base_parts + (node.module or "").split("."))
                    base = base.rstrip(".")
                else:
                    base = node.module or ""
                if not self._in_package(base):
                    continue
                for alias in node.names:
                    sub = f"{base}.{alias.name}"
                    if sub in self.files:
                        yield sub  # ``from repro.x import y`` -> submodule
                    elif base in self.files:
                        yield base  # plain attribute import

    def _in_package(self, name: str) -> bool:
        return name == self.package or name.startswith(self.package + ".")

    def _resolve_absolute(self, name: str) -> Iterable[str]:
        if not self._in_package(name):
            return
        if name in self.files:
            yield name

    # -- closures ---------------------------------------------------------------
    def closure(self, module: str) -> frozenset[str]:
        """Reflexive-transitive import closure of ``module`` (sorted set)."""
        if module in self._closures:
            return self._closures[module]
        seen: set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.files:
                continue
            seen.add(current)
            stack.extend(self.imports_of(current))
        result = frozenset(seen)
        self._closures[module] = result
        return result

    # -- digests ---------------------------------------------------------------
    def file_digest(self, module: str) -> str:
        if module not in self._file_digests:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(module.encode("utf-8"))
            hasher.update(b"\0")
            hasher.update(self.source(module))
            self._file_digests[module] = hasher.hexdigest()
        return self._file_digests[module]


#: modules whose *file* digests salt every cache key: the cache/runner
#: machinery shapes the stored artifacts themselves, so changing it must
#: invalidate everything even though no experiment imports it.
ENGINE_MODULES = (
    "repro.experiments.base",
    "repro.experiments.registry",
    "repro.runner.cache",
    "repro.runner.pool",
)


class DependencyDigests:
    """Per-module closure digests over an :class:`ImportGraph`.

    ``closure_digest(module)`` folds the file digest of every module in
    the import closure plus the engine digest; it changes exactly when a
    file the module can reach (or the runner machinery) changes.  Unknown
    modules return ``None`` so callers can fall back to a whole-tree
    digest.
    """

    def __init__(
        self,
        package_root: "Path | None" = None,
        package: str = DEFAULT_PACKAGE,
        overlay: Optional[Mapping[str, bytes]] = None,
        engine_modules: tuple[str, ...] = ENGINE_MODULES,
    ) -> None:
        self.graph = ImportGraph(package_root, package=package, overlay=overlay)
        self.engine_modules = engine_modules
        self._engine: Optional[str] = None
        self._digests: dict[str, str] = {}

    def engine_digest(self) -> str:
        if self._engine is None:
            hasher = hashlib.blake2b(digest_size=16)
            for module in self.engine_modules:
                if module in self.graph:
                    hasher.update(self.graph.file_digest(module).encode("ascii"))
            self._engine = hasher.hexdigest()
        return self._engine

    def closure(self, module: str) -> tuple[str, ...]:
        return tuple(sorted(self.graph.closure(module)))

    def closure_digest(self, module: str) -> Optional[str]:
        if module not in self.graph:
            return None
        if module not in self._digests:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(self.engine_digest().encode("ascii"))
            for name in self.closure(module):
                hasher.update(self.graph.file_digest(name).encode("ascii"))
                hasher.update(b"\0")
            self._digests[module] = hasher.hexdigest()
        return self._digests[module]
