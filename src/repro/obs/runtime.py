"""The ambient telemetry session: span tracer + metrics registry.

Design
------
* **Ambient, zero-cost when off.**  Instrumentation sites throughout the
  simulator read the module global :data:`ACTIVE` and bail on ``None`` —
  one global load and an identity test, no function call.  Telemetry
  never creates simulation events, never yields and never reads the wall
  clock, so enabling it cannot change an experiment's event schedule (the
  determinism sanitizer's trace hash is identical with telemetry on and
  off; asserted by ``tests/test_obs.py``).

* **Sim-time-stamped.**  Every record carries the virtual time of the
  :class:`~repro.sim.core.Environment` that produced it, passed in
  explicitly by the instrumentation site (``env.now``); the session never
  holds a clock of its own because one experiment builds many
  environments.

* **Tracks.**  Records land in the session's *current track* — a named
  bucket such as ``pingpong/grid/fully_tuned/openmpi``.  Tracks are the
  unit of parallel merging: a sharded experiment records each shard into
  the track named after its shard ``task_id`` while the serial path
  switches tracks at the same boundaries, so the exported telemetry is
  byte-identical between a serial run and a ``--jobs N`` run (exporters
  iterate tracks in sorted order, never completion order).

* **Aggregation.**  Metrics are counters (monotonic sums), gauges (last
  write wins) and histograms (power-of-two bins), keyed by name plus a
  sorted label tuple; memory stays O(distinct keys) over a full campaign.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

#: the installed session (``None`` = telemetry off).  Hot paths read this
#: directly: ``sess = runtime.ACTIVE`` / ``if sess is not None: ...``.
ACTIVE: Optional["TelemetrySession"] = None

#: name of the track records land in before any ``track()`` switch
DEFAULT_TRACK = "main"

#: one ``sim.queue_depth`` sample is recorded every this many events
SIM_SAMPLE_EVERY = 2048


@dataclass(frozen=True)
class TelemetryConfig:
    """What the session records.

    ``spans`` enables the event tracer (spans / instants / counter
    samples — everything the Chrome trace exporter consumes); ``metrics``
    enables the aggregating registry.  ``repro run --trace`` turns both
    on, ``--metrics-out`` alone only the registry.
    """

    spans: bool = True
    metrics: bool = True

    def as_tuple(self) -> tuple[bool, bool]:
        """Compact picklable form handed to runner worker processes."""
        return (self.spans, self.metrics)

    @classmethod
    def from_tuple(cls, pair: "tuple[bool, bool] | None") -> "Optional[TelemetryConfig]":
        return None if pair is None else cls(spans=pair[0], metrics=pair[1])


def _labels_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def metric_key(name: str, **labels: Any) -> tuple:
    """Precompute the registry key for a metric name + label set.

    Hot instrumentation sites (one `tcp.transfers` count per message, one
    `tcp.window_rounds` count per RTT) burn most of their telemetry budget
    stringifying and sorting the same one-label dict millions of times.
    Computing the key once at setup and recording through
    :meth:`TelemetrySession.count_key` / :meth:`~TelemetrySession.observe_key`
    leaves only a dict upsert on the hot path.  The key is exactly what the
    ``**labels`` forms produce, so handle-recorded and label-recorded
    metrics aggregate together.
    """
    return (name, _labels_key(labels))


def _hist_bin(value: float) -> int:
    """Power-of-two floor bin (0 for values below 1)."""
    v = int(value)
    if v < 1:
        return 0
    return 1 << (v.bit_length() - 1)


class TrackData:
    """Everything recorded under one track name."""

    __slots__ = ("events", "counters", "gauges", "histograms", "sample_countdown")

    def __init__(self) -> None:
        #: event records, in record (= simulation) order:
        #: ``("X", ts, dur, name, cat, lane, args)`` completed spans,
        #: ``("i", ts, 0,   name, cat, lane, args)`` instants,
        #: ``("C", ts, 0,   name, "",  lane, value)`` counter samples.
        self.events: list[tuple] = []
        self.counters: dict[tuple, float] = {}
        self.gauges: dict[tuple, float] = {}
        self.histograms: dict[tuple, dict[int, int]] = {}
        #: steps until the next queue-depth sample (counts down from
        #: :data:`SIM_SAMPLE_EVERY`, so samples land on the same every-Nth
        #: step positions as the old modulo scheme at a decrement's cost).
        #: Per *track*, not per session: a serial campaign (one session,
        #: many tracks) and a parallel one (one session per shard) then
        #: sample at the same offsets, which the serial==parallel export
        #: byte-identity contract relies on.
        self.sample_countdown = SIM_SAMPLE_EVERY

    @property
    def empty(self) -> bool:
        return not (self.events or self.counters or self.gauges or self.histograms)


class TelemetrySession:
    """One recording session (one experiment, one shard, one report)."""

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        default_track: str = DEFAULT_TRACK,
    ) -> None:
        self.config = config or TelemetryConfig()
        #: hot-path guards, hoisted out of the config object
        self.spans = self.config.spans
        self.metrics = self.config.metrics
        self.tracks: dict[str, TrackData] = {}
        self._current = self._track(default_track)
        self._default_name = default_track

    # -- tracks -----------------------------------------------------------------
    def _track(self, name: str) -> TrackData:
        data = self.tracks.get(name)
        if data is None:
            data = self.tracks[name] = TrackData()
        return data

    @contextmanager
    def track(self, name: str) -> Iterator[None]:
        """Route records to track ``name`` for the duration of the block."""
        previous = self._current
        self._current = self._track(name)
        try:
            yield
        finally:
            self._current = previous

    # -- the tracer -------------------------------------------------------------
    def complete(
        self,
        ts: float,
        dur: float,
        name: str,
        cat: str,
        lane: str,
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed span (start time + duration, sim seconds)."""
        self._current.events.append(("X", ts, dur, name, cat, lane, args))

    def instant(
        self,
        ts: float,
        name: str,
        cat: str,
        lane: str,
        args: Optional[dict] = None,
    ) -> None:
        self._current.events.append(("i", ts, 0.0, name, cat, lane, args))

    def sample(self, ts: float, name: str, lane: str, value: float) -> None:
        """One point of a counter time series (Chrome ``ph: C``)."""
        self._current.events.append(("C", ts, 0.0, name, "", lane, value))

    def sim_step(self, now: float, queue_depth: int) -> None:
        """Called by ``Environment.step``; samples the queue depth sparsely."""
        current = self._current
        remaining = current.sample_countdown - 1
        if remaining:
            current.sample_countdown = remaining
        else:
            current.sample_countdown = SIM_SAMPLE_EVERY
            current.events.append(
                ("C", now, 0.0, "sim.queue_depth", "", "sim", float(queue_depth))
            )

    # -- the metrics registry ---------------------------------------------------
    def count(self, name: str, inc: float = 1.0, **labels: Any) -> None:
        key = (name, _labels_key(labels))
        counters = self._current.counters
        counters[key] = counters.get(key, 0.0) + inc

    def count_key(self, key: tuple, inc: float = 1.0) -> None:
        """Like :meth:`count` with a :func:`metric_key` precomputed key."""
        counters = self._current.counters
        counters[key] = counters.get(key, 0.0) + inc

    def observe_key(self, key: tuple, value: float) -> None:
        """Like :meth:`observe` with a :func:`metric_key` precomputed key."""
        hists = self._current.histograms
        hist = hists.get(key)
        if hist is None:
            hist = hists[key] = {}
        b = _hist_bin(value)
        hist[b] = hist.get(b, 0) + 1

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self._current.gauges[(name, _labels_key(labels))] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _labels_key(labels))
        hist = self._current.histograms.get(key)
        if hist is None:
            hist = self._current.histograms[key] = {}
        b = _hist_bin(value)
        hist[b] = hist.get(b, 0) + 1

    # -- queries (used by the diagnosis reports) --------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """Sum of one counter across every track (labels must match exactly)."""
        key = (name, _labels_key(labels))
        return sum(t.counters.get(key, 0.0) for t in self.tracks.values())

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all label sets and tracks."""
        return sum(
            value
            for t in self.tracks.values()
            for (n, _), value in t.counters.items()
            if n == name
        )

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        key = (name, _labels_key(labels))
        for t in self.tracks.values():
            if key in t.gauges:
                return t.gauges[key]
        return None

    def samples(self, name: str, lane_prefix: str = "") -> list[tuple[float, float]]:
        """All ``(ts, value)`` counter samples of ``name``, every track,
        record order, optionally filtered by a lane prefix."""
        out: list[tuple[float, float]] = []
        for track_name in sorted(self.tracks):
            for record in self.tracks[track_name].events:
                if record[0] != "C" or record[3] != name:
                    continue
                if lane_prefix and not str(record[5]).startswith(lane_prefix):
                    continue
                out.append((record[1], float(record[6])))
        return out

    def span_names(self) -> dict[str, int]:
        """Span/instant name -> occurrence count (diagnostics, tests)."""
        names: dict[str, int] = {}
        for t in self.tracks.values():
            for record in t.events:
                if record[0] in ("X", "i"):
                    names[record[3]] = names.get(record[3], 0) + 1
        return dict(sorted(names.items()))

    # -- serialization ----------------------------------------------------------
    def to_payload(self) -> dict:
        """Canonical JSON-serialisable form (sorted; empty tracks dropped)."""
        tracks = {}
        for name in sorted(self.tracks):
            data = self.tracks[name]
            if data.empty:
                continue
            tracks[name] = {
                "events": [list(r) for r in data.events],
                "counters": [
                    [n, [list(p) for p in labels], data.counters[(n, labels)]]
                    for n, labels in sorted(data.counters)
                ],
                "gauges": [
                    [n, [list(p) for p in labels], data.gauges[(n, labels)]]
                    for n, labels in sorted(data.gauges)
                ],
                "histograms": [
                    [
                        n,
                        [list(p) for p in labels],
                        [[b, c] for b, c in sorted(data.histograms[(n, labels)].items())],
                    ]
                    for n, labels in sorted(data.histograms)
                ],
            }
        return {
            "schema": 1,
            "config": {"spans": self.spans, "metrics": self.metrics},
            "tracks": tracks,
        }


def active_session() -> Optional[TelemetrySession]:
    return ACTIVE


@contextmanager
def session(
    config: Optional[TelemetryConfig] = None,
    default_track: str = DEFAULT_TRACK,
) -> Iterator[TelemetrySession]:
    """Install a fresh session as the ambient one for the block.

    Sessions nest by save/restore; the previous session (usually ``None``)
    is reinstated on exit even when the block raises.
    """
    global ACTIVE
    sess = TelemetrySession(config, default_track=default_track)
    previous = ACTIVE
    ACTIVE = sess
    try:
        yield sess
    finally:
        ACTIVE = previous


@contextmanager
def track(name: str) -> Iterator[None]:
    """Module-level track switch: a no-op when telemetry is off."""
    sess = ACTIVE
    if sess is None:
        yield
        return
    with sess.track(name):
        yield


def merge_payloads(payloads: Iterable[dict]) -> dict:
    """Merge per-shard telemetry payloads into one canonical payload.

    Callers must pass payloads in a deterministic order (the runner uses
    sorted shard ``task_id`` order).  Track collisions — possible only for
    the default track — merge by concatenating events and summing
    counters/histogram bins; gauges are last-write-wins.
    """
    merged_config = {"spans": False, "metrics": False}
    tracks: dict[str, dict] = {}
    for payload in payloads:
        if not payload:
            continue
        cfg = payload.get("config", {})
        merged_config["spans"] = merged_config["spans"] or bool(cfg.get("spans"))
        merged_config["metrics"] = merged_config["metrics"] or bool(cfg.get("metrics"))
        for name, data in payload.get("tracks", {}).items():
            into = tracks.get(name)
            if into is None:
                tracks[name] = {
                    "events": list(data.get("events", [])),
                    "counters": [list(e) for e in data.get("counters", [])],
                    "gauges": [list(e) for e in data.get("gauges", [])],
                    "histograms": [list(e) for e in data.get("histograms", [])],
                }
                continue
            into["events"].extend(data.get("events", []))
            into["counters"] = _merge_sums(into["counters"], data.get("counters", []))
            into["gauges"] = _merge_last(into["gauges"], data.get("gauges", []))
            into["histograms"] = _merge_hists(
                into["histograms"], data.get("histograms", [])
            )
    return {
        "schema": 1,
        "config": merged_config,
        "tracks": {name: tracks[name] for name in sorted(tracks)},
    }


def _entry_key(entry: list) -> tuple:
    return (entry[0], tuple(tuple(p) for p in entry[1]))


def _merge_sums(base: list, extra: Iterable[list]) -> list:
    table = {_entry_key(e): e[2] for e in base}
    for entry in extra:
        key = _entry_key(entry)
        table[key] = table.get(key, 0.0) + entry[2]
    return [
        [name, [list(p) for p in labels], table[(name, labels)]]
        for name, labels in sorted(table)
    ]


def _merge_last(base: list, extra: Iterable[list]) -> list:
    table = {_entry_key(e): e[2] for e in base}
    for entry in extra:
        table[_entry_key(entry)] = entry[2]
    return [
        [name, [list(p) for p in labels], table[(name, labels)]]
        for name, labels in sorted(table)
    ]


def _merge_hists(base: list, extra: Iterable[list]) -> list:
    table: dict[tuple, dict[int, int]] = {
        _entry_key(e): {int(b): int(c) for b, c in e[2]} for e in base
    }
    for entry in extra:
        bins = table.setdefault(_entry_key(entry), {})
        for b, c in entry[2]:
            bins[int(b)] = bins.get(int(b), 0) + int(c)
    return [
        [
            name,
            [list(p) for p in labels],
            [[b, c] for b, c in sorted(table[(name, labels)].items())],
        ]
        for name, labels in sorted(table)
    ]
