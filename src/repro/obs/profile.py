"""``repro profile``: cProfile hotspot table for one experiment.

A thin wrapper over the standard profiler so "why is table7 slow" has a
one-command answer.  Wall-clock profiling is inherently nondeterministic;
this is a development tool, never part of an experiment's artifact (the
determinism contracts of ``results/`` are untouched).  With ``--record``
the top rows also land in ``BENCH_experiments.json`` (see
:func:`repro.runner.manifest.record_profile`) so hotspot drift is
reviewable next to campaign walls.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ProfileReport:
    """One profiled experiment: rendered table + structured top rows."""

    experiment_id: str
    fast: bool
    title: str
    wall_s: float
    #: rendered pstats table (header + ``print_stats`` output)
    text: str
    #: structured top-N rows by cumulative time, for the manifest
    rows: list[dict[str, Any]] = field(default_factory=list)


def _hotspot_rows(stats: pstats.Stats, top: int) -> list[dict[str, Any]]:
    """Top ``top`` functions by cumulative time as JSON-friendly rows."""
    entries = []
    for (filename, lineno, funcname), row in stats.stats.items():  # type: ignore[attr-defined]
        calls_total, calls_primitive, total_time, cumulative_time, _callers = row
        entries.append(
            {
                "function": funcname,
                "where": f"{filename}:{lineno}",
                "ncalls": int(calls_total),
                "primitive_calls": int(calls_primitive),
                "tottime_s": round(float(total_time), 4),
                "cumtime_s": round(float(cumulative_time), 4),
            }
        )
    entries.sort(key=lambda entry: (-entry["cumtime_s"], entry["where"]))
    return entries[: max(0, top)]


def profile_report(
    experiment_id: str, fast: bool = True, top: int = 25
) -> ProfileReport:
    """Run ``experiment_id`` under cProfile; table and structured rows."""
    from repro.experiments import run_experiment

    profiler = cProfile.Profile()
    # Host-side wall clock: profiling output is a development artifact and
    # never feeds a simulation result.
    start = time.perf_counter()  # lint: disable=DET002
    profiler.enable()
    try:
        result = run_experiment(experiment_id, fast=fast)
    finally:
        profiler.disable()
    wall_s = time.perf_counter() - start  # lint: disable=DET002

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    header = (
        f"profile: {experiment_id} (fast={fast}) — {result.title}\n"
        f"top {top} functions by cumulative time\n"
    )
    return ProfileReport(
        experiment_id=experiment_id,
        fast=fast,
        title=result.title,
        wall_s=wall_s,
        text=header + stream.getvalue(),
        rows=_hotspot_rows(stats, top),
    )


def profile_experiment(experiment_id: str, fast: bool = True, top: int = 25) -> str:
    """Run ``experiment_id`` under cProfile; return the hotspot table."""
    return profile_report(experiment_id, fast=fast, top=top).text
