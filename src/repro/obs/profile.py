"""``repro profile``: cProfile hotspot table for one experiment.

A thin wrapper over the standard profiler so "why is table7 slow" has a
one-command answer.  Wall-clock profiling is inherently nondeterministic;
this is a development tool, never part of an experiment's artifact (the
determinism contracts of ``results/`` are untouched).
"""

from __future__ import annotations

import cProfile
import io
import pstats


def profile_experiment(experiment_id: str, fast: bool = True, top: int = 25) -> str:
    """Run ``experiment_id`` under cProfile; return the hotspot table."""
    from repro.experiments import run_experiment

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run_experiment(experiment_id, fast=fast)
    finally:
        profiler.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    header = (
        f"profile: {experiment_id} (fast={fast}) — {result.title}\n"
        f"top {top} functions by cumulative time\n"
    )
    return header + stream.getvalue()
