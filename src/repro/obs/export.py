"""Telemetry exporters: Chrome trace-event JSON and metric dumps.

All exporters consume the canonical *payload* form produced by
:meth:`repro.obs.runtime.TelemetrySession.to_payload` (or
:func:`repro.obs.runtime.merge_payloads` for a sharded run) and render
byte-deterministically: tracks in sorted name order, record order within
a track, sorted JSON keys, compact separators.  Two runs of the same
experiment + seed produce identical bytes, serial or parallel — that is
what the exporter tests assert.

The Chrome trace document loads in Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``: each telemetry track becomes a process, each lane
(rank, TCP connection direction, ...) a thread; spans are complete
("X") events, point events are instants ("i") and time series are
counter ("C") events.  Timestamps are virtual microseconds.
"""

from __future__ import annotations

import json
from typing import Any

#: schema version stamped into the exported documents
EXPORT_SCHEMA = 1

_ALLOWED_PHASES = {"X", "i", "C", "M"}


# --- Chrome trace ----------------------------------------------------------------
def chrome_trace(payload: dict, label: str = "") -> dict:
    """Build the Chrome trace-event document for a telemetry payload."""
    events: list[dict[str, Any]] = [
        # Document-level metadata event, emitted unconditionally: a traced
        # run that happened to record no spans (telemetry on, nothing
        # instrumented fired) still exports a *valid* non-empty document
        # instead of one Perfetto and validate_chrome_trace reject.
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "name": "trace_label",
            "args": {"producer": "repro.obs", "label": label, "schema": EXPORT_SCHEMA},
        }
    ]
    tracks = payload.get("tracks", {})
    for pid, track_name in enumerate(sorted(tracks), start=1):
        data = tracks[track_name]
        records = data.get("events", [])
        lanes = sorted({str(r[5]) for r in records})
        tids = {lane: tid for tid, lane in enumerate(lanes, start=1)}
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "name": "process_name",
                "args": {"name": track_name},
            }
        )
        for lane in lanes:
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[lane],
                    "ts": 0,
                    "name": "thread_name",
                    "args": {"name": lane},
                }
            )
        for record in records:
            phase, ts, dur, name, cat, lane, args = record
            event: dict[str, Any] = {
                "ph": phase,
                "pid": pid,
                "tid": tids[str(lane)],
                "ts": round(float(ts) * 1e6, 3),
                "name": name,
            }
            if phase == "X":
                event["dur"] = round(float(dur) * 1e6, 3)
                event["cat"] = cat or "span"
                if args:
                    event["args"] = args
            elif phase == "i":
                event["s"] = "t"
                event["cat"] = cat or "event"
                if args:
                    event["args"] = args
            elif phase == "C":
                event["args"] = {"value": args}
            events.append(event)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "label": label, "schema": EXPORT_SCHEMA},
        "traceEvents": events,
    }


def render_chrome_trace(payload: dict, label: str = "") -> str:
    return json.dumps(
        chrome_trace(payload, label=label), sort_keys=True, separators=(",", ":")
    ) + "\n"


def validate_chrome_trace(document: Any) -> list[str]:
    """Schema check of a Chrome trace document; returns the violations.

    Used by the exporter tests and the CI telemetry smoke step
    (``scripts/validate_trace.py``) so a malformed trace fails loudly
    instead of silently refusing to load in Perfetto.
    """
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["trace document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        errors.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _ALLOWED_PHASES:
            errors.append(f"{where}: bad phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} is not an integer")
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: ts is not a number")
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where}: name is missing")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0, got {dur!r}")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                errors.append(f"{where}: C event needs numeric args")
        elif phase == "M":
            if not isinstance(event.get("args"), dict):
                errors.append(f"{where}: M event needs args")
    return errors


# --- metric dumps ----------------------------------------------------------------
def _labels_obj(labels: list) -> dict:
    return {str(k): str(v) for k, v in labels}


def metrics_document(payload: dict, label: str = "") -> dict:
    """JSON metrics dump: per-track registries plus campaign-wide totals.

    Totals are recomputed here from the per-track entries in sorted track
    order — never from an accumulation order that could differ between a
    serial and a parallel run — so the dump is mode-independent.
    """
    tracks_out: dict[str, Any] = {}
    total_counters: dict[tuple, float] = {}
    total_hists: dict[tuple, dict[int, int]] = {}
    tracks = payload.get("tracks", {})
    for track_name in sorted(tracks):
        data = tracks[track_name]
        counters = data.get("counters", [])
        gauges = data.get("gauges", [])
        hists = data.get("histograms", [])
        if not (counters or gauges or hists):
            continue
        tracks_out[track_name] = {
            "counters": [
                {"name": n, "labels": _labels_obj(ls), "value": v}
                for n, ls, v in counters
            ],
            "gauges": [
                {"name": n, "labels": _labels_obj(ls), "value": v}
                for n, ls, v in gauges
            ],
            "histograms": [
                {
                    "name": n,
                    "labels": _labels_obj(ls),
                    "bins": [{"ge": b, "count": c} for b, c in bins],
                }
                for n, ls, bins in hists
            ],
        }
        for n, ls, v in counters:
            key = (n, tuple(tuple(p) for p in ls))
            total_counters[key] = total_counters.get(key, 0.0) + v
        for n, ls, bins in hists:
            key = (n, tuple(tuple(p) for p in ls))
            acc = total_hists.setdefault(key, {})
            for b, c in bins:
                acc[int(b)] = acc.get(int(b), 0) + int(c)
    return {
        "schema": EXPORT_SCHEMA,
        "label": label,
        "totals": {
            "counters": [
                {"name": n, "labels": _labels_obj(list(ls)), "value": total_counters[(n, ls)]}
                for n, ls in sorted(total_counters)
            ],
            "histograms": [
                {
                    "name": n,
                    "labels": _labels_obj(list(ls)),
                    "bins": [
                        {"ge": b, "count": c}
                        for b, c in sorted(total_hists[(n, ls)].items())
                    ],
                }
                for n, ls in sorted(total_hists)
            ],
        },
        "tracks": tracks_out,
    }


def render_metrics_json(payload: dict, label: str = "") -> str:
    return json.dumps(
        metrics_document(payload, label=label), sort_keys=True, indent=1
    ) + "\n"


def render_metrics_csv(payload: dict) -> str:
    """Flat CSV dump: ``track,kind,name,labels,bin,value`` (sorted rows)."""
    rows: list[tuple[str, str, str, str, str, str]] = []
    for track_name, data in payload.get("tracks", {}).items():
        for n, ls, v in data.get("counters", []):
            rows.append((track_name, "counter", n, _labels_csv(ls), "", _num(v)))
        for n, ls, v in data.get("gauges", []):
            rows.append((track_name, "gauge", n, _labels_csv(ls), "", _num(v)))
        for n, ls, bins in data.get("histograms", []):
            for b, c in bins:
                rows.append(
                    (track_name, "histogram", n, _labels_csv(ls), str(int(b)), _num(c))
                )
    lines = ["track,kind,name,labels,bin,value"]
    lines.extend(",".join(row) for row in sorted(rows))
    return "\n".join(lines) + "\n"


def _labels_csv(labels: list) -> str:
    return ";".join(f"{k}={v}" for k, v in labels)


def _num(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)
