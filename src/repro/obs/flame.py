"""Flamegraph rendering over the span aggregates.

Two deterministic renderers for :func:`repro.obs.aggregate.collapsed_stacks`:

* :func:`render_collapsed` — the standard ``a;b;c N`` text format every
  external flamegraph tool consumes (counts are virtual-microsecond
  ticks),
* :func:`render_svg` — a self-contained icicle SVG with no script and no
  randomness (colors are a hash of the frame name, children are laid out
  in name order), so two renders of the same payload are byte-identical.

:func:`experiment_payload` runs one experiment under the campaign runner
with spans on and returns the merged telemetry payload; the merge is
deterministic across worker counts, which is what makes
``repro flame <id>`` byte-identical serial vs ``--jobs N``.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.obs import aggregate as _agg

__all__ = [
    "render_collapsed",
    "render_svg",
    "experiment_payload",
]

_SVG_WIDTH = 1200.0
_ROW_HEIGHT = 16
_FONT_SIZE = 11
_MIN_TEXT_WIDTH = 40.0
_MIN_RECT_WIDTH = 0.1


def render_collapsed(stacks: dict[str, int]) -> str:
    """Collapsed-stack lines, sorted by path: ``a;b;c <ticks>``."""
    return "".join(f"{path} {count}\n" for path, count in sorted(stacks.items()))


class _Node:
    __slots__ = ("name", "self_ticks", "children")

    def __init__(self, name: str):
        self.name = name
        self.self_ticks = 0
        self.children: dict[str, _Node] = {}

    @property
    def cum(self) -> int:
        return self.self_ticks + sum(c.cum for c in self.children.values())

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(c.depth() for c in self.children.values())


def _tree(stacks: dict[str, int]) -> _Node:
    root = _Node("all")
    for path, count in sorted(stacks.items()):
        node = root
        for part in path.split(";"):
            node = node.children.setdefault(part, _Node(part))
        node.self_ticks += count
    return root


def _color(name: str) -> str:
    """Deterministic warm flame color from the frame name."""
    digest = hashlib.md5(name.encode()).digest()
    r = 205 + digest[0] % 50
    g = digest[1] % 230
    b = digest[2] % 55
    return f"rgb({r},{g},{b})"


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def render_svg(stacks: dict[str, int], title: str = "flamegraph") -> str:
    """Self-contained deterministic icicle SVG of the collapsed stacks."""
    root = _tree(stacks)
    total = root.cum
    levels = root.depth() if total else 1
    height = (levels + 2) * _ROW_HEIGHT + 2 * _ROW_HEIGHT
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{int(_SVG_WIDTH)}" '
        f'height="{height}" font-family="monospace" font-size="{_FONT_SIZE}">\n',
        f'<rect width="100%" height="100%" fill="#f8f8f8"/>\n',
        f'<text x="{_SVG_WIDTH / 2:.1f}" y="{_ROW_HEIGHT}" '
        f'text-anchor="middle">{_escape(title)} '
        f"({total} ticks = virtual us)</text>\n",
    ]

    def emit(node: _Node, x: float, width: float, level: int):
        if width < _MIN_RECT_WIDTH:
            return
        y = (level + 2) * _ROW_HEIGHT
        fill = "#d0d0d0" if node.name == "all" else _color(node.name)
        label = f"{node.name} ({node.cum} ticks)"
        out.append(
            f'<g><title>{_escape(label)}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{width:.2f}" '
            f'height="{_ROW_HEIGHT - 1}" fill="{fill}" stroke="#eeeeee"/>'
        )
        if width >= _MIN_TEXT_WIDTH:
            shown = node.name[: max(1, int(width / (_FONT_SIZE * 0.62)))]
            out.append(
                f'<text x="{x + 3:.2f}" y="{y + _ROW_HEIGHT - 5}">'
                f"{_escape(shown)}</text>"
            )
        out.append("</g>\n")
        cursor = x
        for name in sorted(node.children):
            child = node.children[name]
            child_width = width * child.cum / node.cum if node.cum else 0.0
            emit(child, cursor, child_width, level + 1)
            cursor += child_width

    if total:
        emit(root, 0.0, _SVG_WIDTH, 0)
    else:
        out.append(
            f'<text x="{_SVG_WIDTH / 2:.1f}" y="{3 * _ROW_HEIGHT}" '
            f'text-anchor="middle">(no spans recorded)</text>\n'
        )
    out.append("</svg>\n")
    return "".join(out)


def experiment_payload(experiment_id: str, fast: bool = True, jobs: int = 1) -> dict:
    """Run one experiment with spans on; return the merged telemetry payload.

    Always a fresh simulation (the campaign runner disables the result
    cache under telemetry); the merged payload is byte-identical for any
    worker count.
    """
    from repro.obs.runtime import TelemetryConfig
    from repro.runner import ExperimentSpec, run_campaign

    campaign = run_campaign(
        [ExperimentSpec(experiment_id, fast=fast)],
        jobs=jobs,
        telemetry=TelemetryConfig(spans=True, metrics=True),
    )
    payload = campaign.runs[0].telemetry
    return payload if payload is not None else {"schema": 1, "tracks": {}}
