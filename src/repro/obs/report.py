"""Diagnosis reports: the *why* behind the paper's headline figures.

``repro explain fig7`` and ``repro explain fig9`` re-run small, targeted
simulations with the telemetry recorder on and render what the metrics
say about the mechanism:

* **fig7** — the 128 kB bandwidth dip of Figure 6 is the eager→rendezvous
  threshold: every message above it pays one extra grid round trip for
  the handshake.  The report measures the handshake count and cost per
  message around each implementation's threshold, untuned (``tcp_tuned``,
  the Fig. 6 configuration) versus Table-5-tuned (``fully_tuned``,
  Fig. 7), and shows the dip disappearing.
* **fig9** — the seconds-long bandwidth ramp of Figure 9 is TCP slow
  start.  The report replays the 1 MB message stream per stack and lines
  up the congestion-window samples, slow-start exit times and loss
  counts next to the time each stack needs to reach 500 Mbps.
* **fig10** — where the grid's NPB slowdown lives.  The report replays
  the Figure 12 campaign (grid16 *and* cluster16, all implementations)
  with spans on and aggregates the new ``npb.phase.*`` instrumentation
  into a phase × placement breakdown plus the per-site-pair WAN-time
  matrix (``repro.obs.aggregate``): which phase of each kernel blows up
  on the grid, and which site pair's wire time pays for it.
* **coll_hier** — why the site-hierarchical collectives win (and where
  they don't): per-call WAN-crossing and WAN-byte counts for the flat
  and hierarchical variants, from the message trace of the ``coll_hier``
  experiment's single-call probes.

Reports are deterministic: they are derived purely from simulation state
(the same experiment + seed renders byte-identical text), which the test
suite asserts.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.obs.runtime import TelemetryConfig, session
from repro.report import Table, line_chart
from repro.units import KB, MB, fmt_bytes

#: sizes bracketing every implementation's eager threshold (Table 5)
_FIG7_SIZES_FAST = (64 * KB, 128 * KB, 256 * KB, 1 * MB)
_FIG7_SIZES_FULL = (32 * KB, 64 * KB, 128 * KB, 256 * KB, 512 * KB, 1 * MB, 4 * MB)


def explain(figure: str, fast: bool = True, jobs: int = 1) -> str:
    """Render the diagnosis report for ``figure`` (``fig7``, ``fig9``,
    ``fig10`` or ``coll_hier``).  ``jobs`` parallelises the fig10
    diagnosis campaign (the report is byte-identical for any value)."""
    if figure == "fig7":
        return explain_fig7(fast=fast)
    if figure == "fig9":
        return explain_fig9(fast=fast)
    if figure == "fig10":
        return explain_fig10(fast=fast, jobs=jobs)
    if figure == "coll_hier":
        return explain_coll_hier(fast=fast)
    raise ReproError(
        f"no diagnosis report for {figure!r} "
        "(available: fig7, fig9, fig10, coll_hier)"
    )


def _fmt_threshold(value: float) -> str:
    return "inf" if value == float("inf") else fmt_bytes(value)


def explain_fig7(fast: bool = True) -> str:
    """Why Fig. 6 dips at 128 kB — and why Fig. 7 does not."""
    from repro.apps.pingpong import mpi_pingpong
    from repro.experiments.environments import get_environment, pingpong_pair
    from repro.impls import IMPLEMENTATION_ORDER

    sizes = _FIG7_SIZES_FAST if fast else _FIG7_SIZES_FULL
    repeats = 3 if fast else 10

    table = Table(
        [
            "implementation",
            "threshold",
            "size",
            "proto",
            "handshakes",
            "handshake ms",
            "Mbps",
            "tuned Mbps",
        ],
        title="Fig. 7 explained: the eager→rendezvous threshold on the grid",
    )
    lines: list[str] = []
    for name in IMPLEMENTATION_ORDER:
        impl_by_env = {}
        bandwidth = {}
        handshake_stats = {}
        for env_name in ("tcp_tuned", "fully_tuned"):
            env = get_environment(env_name)
            impl = env.impl(name)
            impl_by_env[env_name] = impl
            net, a, b = pingpong_pair("grid")
            for nbytes in sizes:
                with session(TelemetryConfig(spans=False, metrics=True)) as sess:
                    curve = mpi_pingpong(
                        net,
                        impl,
                        a,
                        b,
                        sizes=(nbytes,),
                        repeats=repeats,
                        sysctls=env.sysctls,
                    )
                messages = 2.0 * repeats  # both directions of the pingpong
                handshakes = sess.counter_total("mpi.rndv_handshakes")
                seconds = sess.counter_total("mpi.rndv_handshake_seconds")
                bandwidth[(env_name, nbytes)] = curve.points[0].max_bandwidth_mbps
                handshake_stats[(env_name, nbytes)] = (
                    handshakes / messages,
                    (seconds / handshakes * 1e3) if handshakes else 0.0,
                )
        untuned = impl_by_env["tcp_tuned"]
        tuned = impl_by_env["fully_tuned"]
        for nbytes in sizes:
            per_msg, ms = handshake_stats[("tcp_tuned", nbytes)]
            table.add_row(
                [
                    untuned.display_name,
                    _fmt_threshold(untuned.eager_threshold),
                    fmt_bytes(nbytes),
                    "rndv" if per_msg else "eager",
                    per_msg,
                    ms,
                    bandwidth[("tcp_tuned", nbytes)],
                    bandwidth[("fully_tuned", nbytes)],
                ]
            )
        tuned_rndv = [
            fmt_bytes(s)
            for s in sizes
            if handshake_stats[("fully_tuned", s)][0] > 0
        ]
        lines.append(
            f"* {untuned.display_name}: threshold "
            f"{_fmt_threshold(untuned.eager_threshold)} -> "
            f"{_fmt_threshold(tuned.eager_threshold)}"
            + (
                f" (rendezvous remains at {', '.join(tuned_rndv)})"
                if tuned_rndv
                else " (rendezvous eliminated at these sizes)"
            )
        )

    header = (
        "Every message above the eager threshold opens with a rendezvous\n"
        "handshake: request out, acknowledgement back — one extra round trip\n"
        "before a byte of payload moves.  Negligible in a cluster (~58 us),\n"
        "ruinous on the grid (~11.6 ms RTT, paper §4.2.2): at 128 kB the\n"
        "handshake costs as much as the transfer itself, which is the dip of\n"
        "Fig. 6.  Table 5 raises the thresholds; Fig. 7 shows the dip gone.\n"
        "Measured below ('handshakes' = per message; 'Mbps' = untuned\n"
        "tcp_tuned environment, 'tuned Mbps' = fully_tuned):"
    )
    footer = "Threshold tuning applied (Table 5):\n" + "\n".join(lines)
    return "\n".join([header, "", table.render(), "", footer])


def explain_fig9(fast: bool = True) -> str:
    """Why every stack needs seconds to reach full grid bandwidth."""
    from repro.apps.pingpong import mpi_stream, tcp_stream
    from repro.experiments.environments import get_environment, pingpong_pair
    from repro.impls import IMPLEMENTATION_ORDER

    # Match the fig9 experiment's stream length so t500 lines up with the
    # committed golden.
    count = 80 if fast else 250
    env = get_environment("fully_tuned")

    table = Table(
        [
            "stack",
            "peak Mbps",
            "t500 (s)",
            "cwnd start",
            "cwnd peak",
            "ss exit (s)",
            "losses",
        ],
        title="Fig. 9 explained: TCP slow start under a 1 MB message stream",
    )
    cwnd_series: dict[str, list[tuple[float, float]]] = {}
    for label in ("TCP", *IMPLEMENTATION_ORDER):
        net, a, b = pingpong_pair("grid")
        with session(TelemetryConfig(spans=True, metrics=True)) as sess:
            if label == "TCP":
                samples = tcp_stream(net, a, b, nbytes=MB, count=count, sysctls=env.sysctls)
                display = "TCP"
            else:
                impl = env.impl(label)
                samples = mpi_stream(
                    net, impl, a, b, nbytes=MB, count=count, sysctls=env.sysctls
                )
                display = impl.display_name

        peak = max(s.bandwidth_mbps for s in samples)
        t500 = next((s.time for s in samples if s.bandwidth_mbps >= 500), float("inf"))
        cwnd = sess.samples("tcp.cwnd")
        exits = [
            value
            for track in sess.tracks.values()
            for (metric, _), value in sorted(track.gauges.items())
            if metric == "tcp.slowstart_exit_s"
        ]
        losses = sess.counter_total("tcp.losses")
        table.add_row(
            [
                display,
                peak,
                t500,
                fmt_bytes(cwnd[0][1]) if cwnd else "-",
                fmt_bytes(max(v for _, v in cwnd)) if cwnd else "-",
                min(exits) if exits else float("inf"),
                int(losses),
            ]
        )
        if cwnd:
            stride = max(1, len(cwnd) // 48)
            cwnd_series[display] = [
                (ts, value / KB) for ts, value in cwnd[::stride]
            ]

    header = (
        "A fresh TCP connection probes for bandwidth: the congestion window\n"
        "starts near one MSS and doubles per round trip (slow start) until\n"
        "the first loss, then grows linearly.  With an 11.6 ms grid RTT the\n"
        "probe alone takes seconds — every stack's 1 MB stream ramps slowly\n"
        "(paper §4.2.3, Fig. 9).  'ss exit' is when the window left slow\n"
        "start; pacing (GridMPI) tames the burst losses of the ramp:"
    )
    chart = line_chart(
        cwnd_series,
        title="congestion window ramp (kB) vs time (s)",
        y_label="kB",
    )
    return "\n".join([header, "", table.render(), "", chart])


#: the NPB kernels carrying ``npb.phase.*`` instrumentation
_FIG10_BENCHES = ("cg", "mg", "sp", "bt", "is")


def explain_fig10(fast: bool = True, jobs: int = 1, payload=None) -> str:
    """Where the grid's NPB slowdown lives: phase × site-pair aggregates.

    ``payload`` short-circuits the campaign (tests inject a pre-collected
    one); otherwise the fig12 experiment — grid16 and cluster16, every
    implementation — runs under the campaign runner with spans on.  The
    rendered report is a pure function of the merged payload, hence
    byte-identical serial vs ``--jobs N``.
    """
    from repro.obs import aggregate as _agg

    if payload is None:
        from repro.obs.flame import experiment_payload

        payload = experiment_payload("fig12", fast=fast, jobs=jobs)

    phase_totals = _agg.npb_phase_totals(payload)

    def bench_phases(placement: str, bench: str) -> dict[str, int]:
        track = f"npb/{placement}/{bench}"
        merged: dict[str, int] = {}
        for (tr, _impl, phase), t in phase_totals.items():
            if tr == track:
                merged[phase] = merged.get(phase, 0) + t
        return merged

    table = Table(
        [
            "bench",
            "phase",
            "grid s",
            "grid share",
            "cluster s",
            "grid/cluster",
        ],
        title="Fig. 10 explained: NPB phase breakdown, grid16 vs cluster16",
    )
    dominant: dict[str, tuple[str, int, int]] = {}  # bench -> (phase, ticks, total)
    for bench in _FIG10_BENCHES:
        grid = bench_phases("grid16", bench)
        cluster = bench_phases("cluster16", bench)
        total = sum(grid.values())
        if not total:
            continue
        for phase in sorted(grid, key=lambda p: (-grid[p], p)):
            g, c = grid[phase], cluster.get(phase, 0)
            table.add_row(
                [
                    bench,
                    phase,
                    f"{g / 1e6:.3f}",
                    f"{100.0 * g / total:.1f}%",
                    f"{c / 1e6:.3f}",
                    f"x{g / c:.2f}" if c else "-",
                ]
            )
        top = max(grid, key=lambda p: (grid[p], p))
        dominant[bench] = (top, grid[top], total)

    grid_tracks = {
        track for track in payload.get("tracks", {}) if track.startswith("npb/grid16/")
    }
    matrix = _agg.site_pair_matrix(payload, tracks=grid_tracks)
    wall = {
        pair: cell.transmit_ticks + cell.handshake_ticks
        for pair, cell in matrix.items()
    }
    total_wall = sum(wall.values())
    wan_table = Table(
        [
            "site pair",
            "transfers",
            "bytes",
            "transmit s",
            "retransmits",
            "handshakes",
            "handshake s",
            "wall share",
        ],
        title="WAN-time matrix (grid16, all implementations)",
    )
    for pair in sorted(matrix, key=lambda p: (-wall[p], p)):
        cell = matrix[pair]
        wan_table.add_row(
            [
                f"{pair[0]} -> {pair[1]}",
                cell.transfers,
                fmt_bytes(cell.bytes),
                f"{cell.transmit_ticks / 1e6:.3f}",
                cell.retransmits,
                cell.handshakes,
                f"{cell.handshake_ticks / 1e6:.3f}",
                f"{100.0 * wall[pair] / total_wall:.1f}%" if total_wall else "-",
            ]
        )

    header = (
        "The paper's Fig. 10/12 story: on the 8+8 grid the NPB kernels pay\n"
        "for every inter-site message.  The phase spans below say *where*:\n"
        "per kernel, the rank-time of each phase (summed over ranks and\n"
        "implementations, in virtual seconds) on the grid versus the same\n"
        "16 ranks in one cluster.  The WAN matrix then prices the wire: the\n"
        "window-limited transfer time, congestion losses and rendezvous\n"
        "handshakes per (source site -> destination site) pair:"
    )

    lines = []
    for bench in _FIG10_BENCHES:
        if bench not in dominant:
            continue
        phase, t, total = dominant[bench]
        lines.append(
            f"* {bench}: dominant phase '{phase}' "
            f"({100.0 * t / total:.1f}% of {total / 1e6:.3f} s rank-time)"
        )
    if dominant:
        all_bench, (all_phase, all_ticks, _) = max(
            dominant.items(), key=lambda kv: (kv[1][1], kv[0])
        )
        grand_total = sum(total for _, _, total in dominant.values())
        lines.append(
            f"* dominant phase overall: {all_bench} '{all_phase}' "
            f"({100.0 * all_ticks / grand_total:.1f}% of all instrumented "
            f"rank-time, {all_ticks / 1e6:.3f} s)"
        )
    wan_pairs = {p: w for p, w in wall.items() if p[0] != p[1]}
    if wan_pairs and total_wall:
        top_pair = max(wan_pairs, key=lambda p: (wan_pairs[p], p))
        lines.append(
            f"* top WAN site pair: {top_pair[0]} -> {top_pair[1]} "
            f"({100.0 * wan_pairs[top_pair] / total_wall:.1f}% of all "
            f"tracked wire time, {wan_pairs[top_pair] / 1e6:.3f} s)"
        )
    footer = "Diagnosis:\n" + "\n".join(lines)
    return "\n".join([header, "", table.render(), "", wan_table.render(), "", footer])


def explain_coll_hier(fast: bool = True) -> str:
    """Why the hierarchy helps: count what actually crosses the WAN."""
    from repro.experiments import coll_hier

    result = coll_hier.run(fast=fast)
    table = Table(
        [
            "collective",
            "size",
            "flat WAN msgs",
            "hier WAN msgs",
            "flat WAN bytes",
            "hier WAN bytes",
            "speedup",
        ],
        title="coll_hier explained: per-call WAN crossings, flat vs hierarchical",
    )
    for row in result.rows:
        table.add_row(
            [
                f"{row['op']} ({row['flat_algorithm']})",
                fmt_bytes(row["nbytes"]),
                int(row["wan_msgs_flat"]),
                int(row["wan_msgs_hier"]),
                fmt_bytes(row["wan_bytes_flat"]),
                fmt_bytes(row["wan_bytes_hier"]),
                f"x{row['speedup']:.2f}",
            ]
        )
    header = (
        "A flat collective schedules its tree over rank numbers, blind to\n"
        "sites: under the cyclic rank placement almost every tree edge is a\n"
        "WAN edge, so O(P) full payloads cross the 11.6 ms path per call.\n"
        "The hierarchical variants elect one leader per site (lowest rank;\n"
        "the root's site keeps the root) and only leaders talk across the\n"
        "WAN.  For reduce/allreduce the partials combine *before* crossing,\n"
        "cutting WAN bytes by the site fan-in — that is the large-message\n"
        "speedup.  Gather's bytes are irreducible (everything must reach the\n"
        "root), so its single aggregated transfer saves crossings but loses\n"
        "the flat tree's parallel WAN streams once bandwidth dominates:"
    )
    return "\n".join([header, "", table.render()])
