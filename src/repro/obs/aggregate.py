"""Post-hoc span analytics over merged telemetry payloads.

The runner merges every shard's telemetry into one payload
(:func:`repro.obs.runtime.merge_payloads`); this module turns that
payload into the aggregates the flamegraph and diagnosis layers consume:

* hierarchical span trees with self/cumulative **tick** accounting
  (one tick = one virtual microsecond, kept integral so aggregates are
  exact and platform-independent),
* collapsed-stack totals (``a;b;c N``) for flamegraph rendering,
* a per-site-pair WAN-time matrix over the ``tcp.transmit`` and
  ``rndv.*`` spans that carry ``src_site``/``dst_site`` tags,
* a critical-path extractor naming the longest chain in an experiment.

Every job restarts the virtual clock at zero, so spans of consecutive
jobs on one track overlap in time.  ``MpiJob.run`` marks each start with
an ``mpi.job.begin`` instant; :func:`split_episodes` cuts a track's
record stream at those markers and tags each episode with the
implementation named there.  All aggregation is a pure function of the
payload: the results are byte-identical whether the payload came from a
serial campaign or ``--jobs N`` workers, and permutation-invariant in
the track merge order (aggregates are keyed sums, never list order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "SpanNode",
    "Episode",
    "Frame",
    "SitePairStats",
    "ticks",
    "split_episodes",
    "build_forest",
    "frame_stats",
    "collapsed_stacks",
    "site_pair_matrix",
    "critical_path",
    "npb_phase_totals",
    "job_makespans",
    "rollup",
]

#: virtual microseconds per virtual second
TICKS_PER_SECOND = 1_000_000

#: float-noise tolerance for interval containment (absolute, seconds)
EPS = 1e-9

#: span names that carry ``src_site``/``dst_site`` tags and feed the
#: WAN-time matrix
SITE_TAGGED = ("tcp.transmit", "rndv.announce", "rndv.handshake", "rndv.data", "rndv.ack")


def ticks(seconds: float) -> int:
    """Integer virtual-microsecond ticks for a duration in seconds."""
    return round(float(seconds) * TICKS_PER_SECOND)


@dataclass
class SpanNode:
    """One completed span, with the children containment assigned it."""

    name: str
    cat: str
    lane: str
    ts: float
    dur: float
    args: Optional[dict]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.ts + self.dur

    @property
    def ticks(self) -> int:
        return ticks(self.dur)


@dataclass
class Episode:
    """One job's slice of a track's record stream."""

    index: int
    #: args of the opening ``mpi.job.begin`` instant ({} before the first
    #: marker — e.g. a raw TCP experiment with no MPI job)
    meta: dict
    records: list

    @property
    def impl(self) -> str:
        return str(self.meta.get("impl", ""))


def split_episodes(events: list) -> list[Episode]:
    """Cut one track's record stream at ``mpi.job.begin`` markers.

    Records before the first marker form episode 0 with empty meta; a
    leading marker opens episode 0 directly.  Only non-empty episodes are
    returned, re-indexed consecutively.
    """
    episodes: list[Episode] = []
    meta: dict = {}
    current: list = []

    def flush():
        if current:
            episodes.append(Episode(len(episodes), meta, list(current)))

    for event in events:
        if event[0] == "i" and event[3] == "mpi.job.begin":
            flush()
            meta = dict(event[6] or {})
            current = []
        else:
            current.append(event)
    flush()
    return episodes


def _contained(inner: SpanNode, outer: SpanNode) -> bool:
    if inner.ts < outer.ts - EPS or inner.end > outer.end + EPS:
        return False
    # A zero-duration span sitting exactly on a later span's start
    # belongs to the instant *before* it (the sim ran it first); leave
    # it a root rather than adopting it into a phase it preceded.
    if inner.dur == 0.0 and abs(inner.ts - outer.ts) <= EPS:
        return False
    return True


def build_forest(records: list, lane: Optional[str] = None) -> list[SpanNode]:
    """Containment forest over the complete-span records of one episode.

    ``records`` must be in record order, which within an episode is span
    *completion* order: children complete before their parents, so each
    arriving span adopts the contiguous suffix of earlier roots its
    interval contains.  With ``lane`` set, only that lane's spans are
    considered (per-lane trees — the flamegraph view); with ``lane``
    ``None`` all lanes merge into one forest (the critical-path view,
    where e.g. the closing ``mpi.job`` span adopts every rank's
    top-level spans).
    """
    roots: list[SpanNode] = []
    for event in records:
        if event[0] != "X":
            continue
        if lane is not None and event[5] != lane:
            continue
        node = SpanNode(
            name=event[3], cat=event[4], lane=event[5],
            ts=float(event[1]), dur=float(event[2]), args=event[6],
        )
        adopted: list[SpanNode] = []
        while roots and _contained(roots[-1], node):
            adopted.append(roots.pop())
        adopted.reverse()
        node.children = adopted
        roots.append(node)
    return roots


@dataclass
class Frame:
    """Aggregated stats of one stack path (``a;b;c``)."""

    path: tuple[str, ...]
    calls: int = 0
    cum_ticks: int = 0
    self_ticks: int = 0

    @property
    def key(self) -> str:
        return ";".join(self.path)


def _iter_episodes(payload: dict, tracks=None) -> Iterator[tuple[str, Episode]]:
    for track in sorted(payload.get("tracks", {})):
        if tracks is not None and track not in tracks:
            continue
        for episode in split_episodes(payload["tracks"][track]["events"]):
            yield track, episode


def _lanes_in_order(records: list) -> list[str]:
    seen: dict[str, None] = {}
    for event in records:
        if event[0] == "X":
            seen.setdefault(event[5], None)
    return list(seen)


def frame_stats(payload: dict, tracks=None) -> dict[str, Frame]:
    """Per-path frame aggregation across all tracks, episodes and lanes.

    Trees are built per lane (the flamegraph view: one rank-lane is one
    "thread"), then folded into one table keyed by the semicolon-joined
    name path.  Keyed summation makes the result independent of track
    merge order and of serial-vs-parallel campaign execution.
    """
    frames: dict[str, Frame] = {}

    def walk(node: SpanNode, prefix: tuple[str, ...]):
        path = prefix + (node.name,)
        frame = frames.get(";".join(path))
        if frame is None:
            frame = Frame(path)
            frames[frame.key] = frame
        child_ticks = 0
        for child in node.children:
            child_ticks += child.ticks
            walk(child, path)
        frame.calls += 1
        frame.cum_ticks += node.ticks
        frame.self_ticks += max(0, node.ticks - child_ticks)

    for _track, episode in _iter_episodes(payload, tracks):
        for lane in _lanes_in_order(episode.records):
            for root in build_forest(episode.records, lane=lane):
                walk(root, ())
    return frames


def collapsed_stacks(payload: dict, tracks=None) -> dict[str, int]:
    """Standard collapsed-stack totals: path -> self ticks (positive only)."""
    return {
        key: frame.self_ticks
        for key, frame in frame_stats(payload, tracks).items()
        if frame.self_ticks > 0
    }


@dataclass
class SitePairStats:
    """WAN-time matrix cell for one ``(src_site, dst_site)`` pair."""

    transfers: int = 0          # window-limited tcp.transmit spans
    bytes: int = 0              # payload bytes of those transfers
    transmit_ticks: int = 0     # wall ticks spent in them
    retransmits: int = 0        # congestion-loss events during them
    handshakes: int = 0         # rndv.handshake spans
    handshake_ticks: int = 0    # wall ticks of the handshake round trips


def site_pair_matrix(
    payload: dict, tracks=None, impl: Optional[str] = None
) -> dict[tuple[str, str], SitePairStats]:
    """Aggregate site-tagged spans into the WAN-time matrix.

    ``tcp.transmit`` rows carry the wire truth (bytes, wall,
    retransmits); ``rndv.handshake`` rows add the paper's §4.2.2 cost —
    the extra round trip per rendezvous message.  ``impl`` restricts the
    aggregation to episodes of one implementation.
    """
    matrix: dict[tuple[str, str], SitePairStats] = {}
    for _track, episode in _iter_episodes(payload, tracks):
        if impl is not None and episode.impl != impl:
            continue
        for event in episode.records:
            if event[0] != "X":
                continue
            args = event[6]
            if not args or "src_site" not in args:
                continue
            pair = (str(args["src_site"]), str(args["dst_site"]))
            cell = matrix.get(pair)
            if cell is None:
                cell = matrix[pair] = SitePairStats()
            name = event[3]
            if name == "tcp.transmit":
                cell.transfers += 1
                cell.bytes += int(args.get("bytes", 0))
                cell.transmit_ticks += ticks(event[2])
                cell.retransmits += int(args.get("retransmits", 0))
            elif name == "rndv.handshake":
                cell.handshakes += 1
                cell.handshake_ticks += ticks(event[2])
    return matrix


def npb_phase_totals(payload: dict, tracks=None) -> dict[tuple[str, str, str], int]:
    """Cumulative ticks of every ``npb.phase.<name>`` span, keyed
    ``(track, impl, phase)`` — rank-time summed over all lanes.

    Phases never nest in each other, so a flat record scan is exact (no
    double counting) and independent of record order.
    """
    totals: dict[tuple[str, str, str], int] = {}
    for track, episode in _iter_episodes(payload, tracks):
        for event in episode.records:
            if event[0] != "X" or not event[3].startswith("npb.phase."):
                continue
            key = (track, episode.impl, event[3][len("npb.phase."):])
            totals[key] = totals.get(key, 0) + ticks(event[2])
    return totals


def job_makespans(payload: dict, tracks=None) -> dict[tuple[str, str], int]:
    """``mpi.job`` makespans in ticks, keyed ``(track, impl)`` (summed if
    one implementation runs several jobs on a track)."""
    spans: dict[tuple[str, str], int] = {}
    for track, episode in _iter_episodes(payload, tracks):
        for event in episode.records:
            if event[0] == "X" and event[3] == "mpi.job":
                key = (track, episode.impl)
                spans[key] = spans.get(key, 0) + ticks(event[2])
    return spans


def critical_path(payload: dict, tracks=None) -> list[dict]:
    """The longest chain in the span DAG of the longest episode.

    Per episode, all lanes merge into one containment forest (ties
    resolved deterministically by record order); the walk starts at the
    globally longest root span and repeatedly descends into the child
    that finishes *last* — the span whose completion gates the parent's
    (ties: more ticks, then name/lane).  Returns one dict per hop:
    ``{name, lane, track, ticks, depth}``.
    """
    best_root: Optional[SpanNode] = None
    best_track = ""
    for track, episode in _iter_episodes(payload, tracks):
        for root in build_forest(episode.records):
            if best_root is None or root.ticks > best_root.ticks:
                best_root, best_track = root, track
    if best_root is None:
        return []
    chain: list[dict] = []
    node: Optional[SpanNode] = best_root
    depth = 0
    while node is not None:
        chain.append(
            {
                "name": node.name,
                "lane": node.lane,
                "track": best_track,
                "ticks": node.ticks,
                "depth": depth,
            }
        )
        node = max(
            node.children,
            key=lambda c: (c.end, c.ticks, c.name, c.lane),
            default=None,
        )
        depth += 1
    return chain


def rollup(payload: dict, top: int = 5) -> dict:
    """Compact campaign-manifest summary of one run's span analytics:
    span count, the top self-tick frames, and the WAN site-pair totals."""
    frames = frame_stats(payload)
    ranked = sorted(
        frames.values(), key=lambda f: (-f.self_ticks, f.key)
    )[:top]
    wan = {
        f"{src}->{dst}": {
            "bytes": cell.bytes,
            "transmit_ticks": cell.transmit_ticks,
            "retransmits": cell.retransmits,
            "handshakes": cell.handshakes,
        }
        for (src, dst), cell in sorted(site_pair_matrix(payload).items())
        if src != dst
    }
    return {
        "spans": sum(f.calls for f in frames.values()),
        "top_self": [[f.key, f.self_ticks] for f in ranked],
        "wan": wan,
    }
