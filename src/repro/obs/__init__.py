"""``repro.obs`` — full-stack simulation telemetry.

Three cooperating pieces:

:mod:`repro.obs.runtime`
    The ambient :class:`TelemetrySession`: a deterministic,
    sim-time-stamped span/event tracer plus a metrics registry
    (counters / gauges / histograms).  Zero-cost when disabled — every
    instrumentation site in the simulator is guarded by one module-global
    ``None`` check and telemetry never schedules events, so enabling it
    cannot perturb a simulation's event schedule (asserted by tests).

:mod:`repro.obs.export`
    Exporters: Chrome trace-event JSON (loadable in Perfetto / about:tracing)
    and JSON/CSV metric dumps, all byte-deterministic for a given
    experiment + seed.

:mod:`repro.obs.aggregate` / :mod:`repro.obs.flame`
    Post-hoc span analytics over merged campaign payloads: hierarchical
    span trees with self/cumulative tick accounting, collapsed-stack
    flamegraph export (text and deterministic SVG), the per-site-pair
    WAN-time matrix, and a critical-path extractor (``repro flame``).

:mod:`repro.obs.report` / :mod:`repro.obs.profile`
    Diagnosis reports (``repro explain fig7`` / ``fig9`` / ``fig10``)
    that narrate the paper's headline results from the telemetry, and a
    cProfile harness (``repro profile``) for the simulator itself.
"""

from __future__ import annotations

from repro.obs.aggregate import (
    collapsed_stacks,
    critical_path,
    frame_stats,
    site_pair_matrix,
)
from repro.obs.export import (
    chrome_trace,
    metrics_document,
    render_chrome_trace,
    render_metrics_csv,
    render_metrics_json,
    validate_chrome_trace,
)
from repro.obs.flame import render_collapsed, render_svg
from repro.obs.runtime import (
    TelemetryConfig,
    TelemetrySession,
    active_session,
    merge_payloads,
    session,
    track,
)

__all__ = [
    "TelemetryConfig",
    "TelemetrySession",
    "active_session",
    "chrome_trace",
    "collapsed_stacks",
    "critical_path",
    "frame_stats",
    "merge_payloads",
    "metrics_document",
    "render_chrome_trace",
    "render_collapsed",
    "render_metrics_csv",
    "render_metrics_json",
    "render_svg",
    "session",
    "site_pair_matrix",
    "track",
    "validate_chrome_trace",
]
