"""The tuning advisor: from path properties to concrete settings.

Reproduces the paper's §4.2 reasoning:

1. socket buffers must hold at least ``RTT x bandwidth`` (1.45 MB for the
   Rennes-Nancy path; the paper rounds up to 4 MB "for compatibility with
   the rest of the grid" — i.e. the worst RTT, 19.9 ms, needs ~2.5 MB);
2. MPICH2 and MPICH-Madeleine then just work (kernel auto-tuning);
   GridMPI additionally needs the *initial* buffer value raised;
   OpenMPI needs explicit ``-mca btl_tcp_sndbuf/btl_tcp_rcvbuf``;
3. the eager/rendezvous threshold should exceed the largest message the
   application sends (Table 5: 65 MB, or the 32 MB OpenMPI maximum).

The advisor is a closed loop, not a lookup table: give
:func:`tune_for_grid` a ``network`` and both knobs are *measured*
(:mod:`repro.tuning.measure` — per-link RTT/bandwidth probes feed
:func:`advise_buffer_bytes`, a threshold sweep feeds
:func:`repro.tuning.measure.advise_eager_threshold`).  Without one it
falls back to the paper's constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ReproError
from repro.impls.base import MpiImplementation
from repro.net.topology import Network
from repro.tcp.sysctl import SysctlConfig
from repro.units import MB, Size, fmt_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle (measure uses bdp_bytes)
    from repro.tuning.measure import LinkProbe

#: Table 5's tuned threshold ("65 MB": above the 64 MB sweep maximum).
GRID_EAGER_THRESHOLD: Size = Size(65 * MB)

#: the paper's §4.2.1 buffer choice
GRID_BUFFER_BYTES: Size = Size(4 * MB)


def bdp_bytes(rtt_seconds: float, bandwidth_bps: float) -> Size:
    """Bandwidth-delay product: the minimum useful socket buffer."""
    if rtt_seconds <= 0 or bandwidth_bps <= 0:
        raise ReproError("RTT and bandwidth must be positive")
    return Size(int(math.ceil(rtt_seconds * bandwidth_bps / 8.0)))


def advise_buffer_bytes(
    network: Network,
    headroom: float = 1.6,
    probes: "Optional[Sequence[LinkProbe]]" = None,
) -> Size:
    """A single buffer size serving every path of the grid: the worst
    inter-site BDP times ``headroom``, rounded up to a whole MiB.

    With ``probes`` (from :func:`repro.tuning.measure.probe_network`) the
    BDPs come from *measured* RTT/bandwidth; otherwise from the declared
    topology.  For the paper's testbed both land on 4 MiB, exactly their
    choice.
    """
    if probes is not None:
        from repro.tuning.measure import measured_buffer_bytes

        return measured_buffer_bytes(probes, headroom=headroom)
    worst = 0
    names = sorted(network.clusters)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            try:
                rtt = network.rtt(a, b)
            except ReproError:
                continue
            cap = min(
                network.clusters[a].uplink.capacity_bps,
                network.clusters[b].downlink.capacity_bps,
            )
            worst = max(worst, bdp_bytes(rtt, cap))
    if worst == 0:
        raise ReproError("network has no inter-site paths to tune for")
    return Size(int(math.ceil(worst * headroom / MB)) * MB)


def tune_for_grid(
    impl: MpiImplementation,
    buffer_bytes: Optional[Size] = None,
    eager_threshold: Optional[Size] = None,
    network: Optional[Network] = None,
    sysctls: Optional[SysctlConfig] = None,
) -> MpiImplementation:
    """Apply the full §4.2 recipe to one implementation.

    With a ``network``, any knob left unset is measured from it (the
    closed loop); without one, the paper's constants apply.  The eager
    threshold is clamped to ``impl.max_eager_threshold`` here — the same
    clamp :func:`render_recipe` applies — so the simulated implementation
    and the rendered human recipe always agree.
    """
    if network is not None:
        if buffer_bytes is None:
            from repro.tuning.measure import probe_network

            buffer_bytes = advise_buffer_bytes(
                network, probes=probe_network(network, sysctls=sysctls)
            )
        if eager_threshold is None:
            from repro.tuning.measure import advise_eager_threshold

            eager_threshold = advise_eager_threshold(impl, network, sysctls=sysctls)
    if buffer_bytes is None:
        buffer_bytes = GRID_BUFFER_BYTES
    if eager_threshold is None:
        eager_threshold = GRID_EAGER_THRESHOLD
    threshold = min(eager_threshold, impl.max_eager_threshold)
    return impl.with_socket_buffers(buffer_bytes).with_eager_threshold(threshold)


@dataclass(frozen=True)
class TuningRecipe:
    """Human-executable instructions for one implementation."""

    impl_name: str
    sysctl_commands: tuple[str, ...]
    steps: tuple[str, ...]
    #: the concrete values the steps encode — what the regression tests
    #: compare against the simulated implementation's settings
    buffer_bytes: int
    eager_threshold: float


def render_recipe(
    impl: MpiImplementation,
    sysctls: SysctlConfig,
    buffer_bytes: Size = GRID_BUFFER_BYTES,
    eager_threshold: Size = GRID_EAGER_THRESHOLD,
) -> TuningRecipe:
    """The paper's §4.2 instructions, rendered per implementation."""
    steps: list[str] = []
    threshold = min(eager_threshold, impl.max_eager_threshold)
    if impl.name == "mpich2":
        steps.append(
            "edit src/mpid/ch3/channels/sock/include/mpidi_ch3_post.h: "
            f"#define MPIDI_CH3_EAGER_MAX_MSG_SIZE ({fmt_bytes(threshold)})"
        )
    elif impl.name == "gridmpi":
        steps.append(
            "raise the middle value of tcp_rmem/tcp_wmem to "
            f"{fmt_bytes(buffer_bytes)} (GridMPI sockets keep their initial size)"
        )
        steps.append(
            "rendezvous already disabled for MPI_Send by default "
            "(_YAMPI_RSIZE can set a threshold if ever needed)"
        )
    elif impl.name == "madeleine":
        steps.append(
            "edit mpid/ch_mad/hot_stuff.h: "
            f"#define DEFAULT_SWITCH ({fmt_bytes(threshold)})"
        )
    elif impl.name == "openmpi":
        steps.append(
            f"mpirun -mca btl_tcp_sndbuf {buffer_bytes} "
            f"-mca btl_tcp_rcvbuf {buffer_bytes}"
        )
        steps.append(f"mpirun -mca btl_tcp_eager_limit {int(threshold)}")
    else:
        raise ReproError(f"no recipe known for implementation {impl.name!r}")
    return TuningRecipe(
        impl_name=impl.name,
        sysctl_commands=tuple(sysctls.render_commands()),
        steps=tuple(steps),
        buffer_bytes=int(buffer_bytes),
        eager_threshold=threshold,
    )
