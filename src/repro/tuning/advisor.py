"""The tuning advisor: from path properties to concrete settings.

Reproduces the paper's §4.2 reasoning:

1. socket buffers must hold at least ``RTT x bandwidth`` (1.45 MB for the
   Rennes-Nancy path; the paper rounds up to 4 MB "for compatibility with
   the rest of the grid" — i.e. the worst RTT, 19.9 ms, needs ~2.5 MB);
2. MPICH2 and MPICH-Madeleine then just work (kernel auto-tuning);
   GridMPI additionally needs the *initial* buffer value raised;
   OpenMPI needs explicit ``-mca btl_tcp_sndbuf/btl_tcp_rcvbuf``;
3. the eager/rendezvous threshold should exceed the largest message the
   application sends (Table 5: 65 MB, or the 32 MB OpenMPI maximum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError
from repro.impls.base import MpiImplementation
from repro.net.topology import Network
from repro.tcp.sysctl import SysctlConfig
from repro.units import MB, fmt_bytes

#: Table 5's tuned threshold ("65 MB": above the 64 MB sweep maximum).
GRID_EAGER_THRESHOLD = 65 * MB


def bdp_bytes(rtt_seconds: float, bandwidth_bps: float) -> int:
    """Bandwidth-delay product: the minimum useful socket buffer."""
    if rtt_seconds <= 0 or bandwidth_bps <= 0:
        raise ReproError("RTT and bandwidth must be positive")
    return int(math.ceil(rtt_seconds * bandwidth_bps / 8.0))


def advise_buffer_bytes(network: Network, headroom: float = 1.6) -> int:
    """A single buffer size serving every path of the grid: the worst
    inter-site BDP times ``headroom``, rounded up to a whole MiB.

    For the paper's testbed this lands on 4 MiB, exactly their choice.
    """
    worst = 0
    names = sorted(network.clusters)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            try:
                rtt = network.rtt(a, b)
            except ReproError:
                continue
            cap = min(
                network.clusters[a].uplink.capacity_bps,
                network.clusters[b].downlink.capacity_bps,
            )
            worst = max(worst, bdp_bytes(rtt, cap))
    if worst == 0:
        raise ReproError("network has no inter-site paths to tune for")
    return int(math.ceil(worst * headroom / MB)) * MB


def tune_for_grid(
    impl: MpiImplementation,
    buffer_bytes: int = 4 * MB,
    eager_threshold: float = GRID_EAGER_THRESHOLD,
) -> MpiImplementation:
    """Apply the full §4.2 recipe to one implementation."""
    return impl.with_socket_buffers(buffer_bytes).with_eager_threshold(eager_threshold)


@dataclass(frozen=True)
class TuningRecipe:
    """Human-executable instructions for one implementation."""

    impl_name: str
    sysctl_commands: tuple[str, ...]
    steps: tuple[str, ...]


def render_recipe(
    impl: MpiImplementation,
    sysctls: SysctlConfig,
    buffer_bytes: int = 4 * MB,
    eager_threshold: float = GRID_EAGER_THRESHOLD,
) -> TuningRecipe:
    """The paper's §4.2 instructions, rendered per implementation."""
    steps: list[str] = []
    threshold = min(eager_threshold, impl.max_eager_threshold)
    if impl.name == "mpich2":
        steps.append(
            "edit src/mpid/ch3/channels/sock/include/mpidi_ch3_post.h: "
            f"#define MPIDI_CH3_EAGER_MAX_MSG_SIZE ({fmt_bytes(threshold)})"
        )
    elif impl.name == "gridmpi":
        steps.append(
            "raise the middle value of tcp_rmem/tcp_wmem to "
            f"{fmt_bytes(buffer_bytes)} (GridMPI sockets keep their initial size)"
        )
        steps.append(
            "rendezvous already disabled for MPI_Send by default "
            "(_YAMPI_RSIZE can set a threshold if ever needed)"
        )
    elif impl.name == "madeleine":
        steps.append(
            "edit mpid/ch_mad/hot_stuff.h: "
            f"#define DEFAULT_SWITCH ({fmt_bytes(threshold)})"
        )
    elif impl.name == "openmpi":
        steps.append(
            f"mpirun -mca btl_tcp_sndbuf {buffer_bytes} "
            f"-mca btl_tcp_rcvbuf {buffer_bytes}"
        )
        steps.append(f"mpirun -mca btl_tcp_eager_limit {int(threshold)}")
    else:
        raise ReproError(f"no recipe known for implementation {impl.name!r}")
    return TuningRecipe(
        impl_name=impl.name,
        sysctl_commands=tuple(sysctls.render_commands()),
        steps=tuple(steps),
    )
