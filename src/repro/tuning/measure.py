"""Closing the advisor loop: measure the network, then tune.

The advisor's constants (``4 MB`` buffers, Table 5's ``65 MB``
threshold) come straight from the paper; this module derives the same
numbers from *measurement alone*, the way an operator on an unknown
grid would:

1. :func:`probe_network` runs a raw-TCP pingpong over every inter-site
   pair — the minimum 1-byte round trip is the path RTT, the best
   large-message goodput is the usable bandwidth;
2. :func:`repro.tuning.advisor.advise_buffer_bytes` accepts those
   probes and sizes the socket buffers from the measured
   bandwidth-delay products;
3. :func:`advise_eager_threshold` sweeps eager vs. rendezvous at each
   message size (:mod:`repro.tuning.sweep`) and returns the measured
   crossover, clamped to the implementation's maximum — Table 5,
   automated.

``tune_for_grid(impl, network=...)`` chains all three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.impls.base import MpiImplementation
from repro.net.topology import Network, Node
from repro.units import MB, Rate, Size

#: the large message of the bandwidth probe — big enough that TCP's
#: slow-start ramp is amortised and the extra round-trip time over the
#: 1-byte probe is dominated by steady-state serialisation
PROBE_BANDWIDTH_BYTES: Size = Size(256 * MB)

#: the probe's socket buffers (``iperf -w`` style): explicitly huge so
#: the measurement sees the path, not the probing host's window
PROBE_WINDOW_BYTES: Size = Size(32 * MB)


@dataclass(frozen=True)
class LinkProbe:
    """Measured properties of one inter-site path."""

    site_a: str
    site_b: str
    #: minimum 1-byte round trip (the path RTT)
    rtt_seconds: float
    #: best large-message goodput, bits per second
    bandwidth_bps: Rate

    @property
    def bdp(self) -> Size:
        """Measured bandwidth-delay product: the minimum useful buffer."""
        from repro.tuning.advisor import bdp_bytes

        return Size(bdp_bytes(self.rtt_seconds, self.bandwidth_bps))


def probe_link(
    network: Network,
    node_a: Node,
    node_b: Node,
    repeats: int = 3,
    bandwidth_bytes: Size = PROBE_BANDWIDTH_BYTES,
    sysctls=None,
) -> tuple[float, Rate]:
    """Measure one path: ``(rtt_seconds, bandwidth_bps)``.

    Raw TCP (no MPI layer): the probe must see the path, not an
    implementation's protocol choices.  The 1-byte minimum round trip is
    the RTT.  Bandwidth uses the packet-pair idea: the *extra* round-trip
    time the large message needs over the 1-byte one is pure
    serialisation, so the fixed latency cancels out of the estimate.
    The probe pins huge socket buffers (``iperf -w`` style) and repeats
    the transfer so slow start has opened the window by the best round.
    """
    from repro.apps.pingpong import tcp_pingpong
    from repro.tcp.buffers import BufferPolicy
    from repro.tcp.connection import TcpOptions

    window = BufferPolicy(
        "fixed", sndbuf=int(PROBE_WINDOW_BYTES), rcvbuf=int(PROBE_WINDOW_BYTES)
    )
    curve = tcp_pingpong(
        network,
        node_a,
        node_b,
        sizes=(1, int(bandwidth_bytes)),
        repeats=repeats,
        sysctls=sysctls,
        options=TcpOptions(buffer_policy=window),
    )
    rtt = curve.points[0].min_rtt
    extra = curve.points[1].min_rtt - rtt
    if extra <= 0:
        raise ReproError("bandwidth probe needs a larger message than the path RTT")
    bandwidth = Rate(int(bandwidth_bytes) * 8.0 * 2.0 / extra)
    return rtt, bandwidth


def probe_network(
    network: Network,
    repeats: int = 3,
    bandwidth_bytes: Size = PROBE_BANDWIDTH_BYTES,
    sysctls=None,
) -> tuple[LinkProbe, ...]:
    """Probe every routable inter-site pair (first node of each site)."""
    probes = []
    names = sorted(network.clusters)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            try:
                network.rtt(a, b)
            except ReproError:
                continue
            rtt, bandwidth = probe_link(
                network,
                network.clusters[a].nodes[0],
                network.clusters[b].nodes[0],
                repeats=repeats,
                bandwidth_bytes=bandwidth_bytes,
                sysctls=sysctls,
            )
            probes.append(LinkProbe(a, b, rtt, bandwidth))
    if not probes:
        raise ReproError("network has no inter-site paths to probe")
    return tuple(probes)


def measured_buffer_bytes(
    probes: Sequence[LinkProbe], headroom: float = 1.6
) -> Size:
    """Buffer advice from measured BDPs: worst path times ``headroom``,
    rounded up to a whole MiB (the declared-topology twin lives in
    :func:`repro.tuning.advisor.advise_buffer_bytes`)."""
    if not probes:
        raise ReproError("no link probes to derive a buffer size from")
    worst = max(p.bdp for p in probes)
    return Size(int(math.ceil(worst * headroom / MB)) * MB)


def advise_eager_threshold(
    impl: MpiImplementation,
    network: Network,
    node_a: Optional[Node] = None,
    node_b: Optional[Node] = None,
    sizes: Optional[Sequence[int]] = None,
    repeats: int = 4,
    sysctls=None,
) -> Size:
    """Table 5, automated: the measured eager/rendezvous crossover.

    Runs the sweep of :func:`repro.tuning.sweep.measure_ideal_threshold`
    on the *worst* inter-site path (or an explicit node pair) and
    returns the smallest safe threshold as a byte count, clamped to the
    implementation's maximum (OpenMPI: 32 MB).
    """
    if node_a is None or node_b is None:
        node_a, node_b = worst_inter_site_pair(network)
    from repro.tuning.sweep import measure_ideal_threshold

    return Size(
        int(
            measure_ideal_threshold(
                impl,
                network,
                node_a,
                node_b,
                sizes=sizes,
                repeats=repeats,
                sysctls=sysctls,
            )
        )
    )


def worst_inter_site_pair(network: Network) -> tuple[Node, Node]:
    """The node pair spanning the highest-RTT inter-site path — the path
    whose threshold dominates grid-wide tuning."""
    worst: Optional[tuple[float, str, str]] = None
    names = sorted(network.clusters)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            try:
                rtt = network.rtt(a, b)
            except ReproError:
                continue
            if worst is None or rtt > worst[0]:
                worst = (rtt, a, b)
    if worst is None:
        raise ReproError("network has no inter-site paths to probe")
    _, a, b = worst
    return network.clusters[a].nodes[0], network.clusters[b].nodes[0]
