"""Empirical eager/rendezvous threshold sweeps (Table 5).

For each message size the pingpong is timed once with the message just
*below* the threshold (eager) and once just *above* (rendezvous); the
ideal threshold is above the largest size where eager wins.  With a
pre-posted receive the rendezvous handshake is pure overhead, so eager
wins everywhere and the ideal threshold is "anything above the largest
message" — the paper reports this as 65 MB (32 MB for OpenMPI, its
eager-limit maximum), in the cluster and on the grid alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.pingpong import mpi_pingpong
from repro.impls.base import MpiImplementation
from repro.net.topology import Network, Node
from repro.units import MB, Size, log2_sizes

#: reported when eager wins at every probed size (Table 5's "65 MB")
ABOVE_MAX: Size = Size(65 * MB)


@dataclass(frozen=True)
class ThresholdPoint:
    nbytes: int
    eager_bandwidth_mbps: float
    rndv_bandwidth_mbps: float

    @property
    def eager_wins(self) -> bool:
        return self.eager_bandwidth_mbps >= self.rndv_bandwidth_mbps


def threshold_sweep(
    impl: MpiImplementation,
    network: Network,
    node_a: Node,
    node_b: Node,
    sizes=None,
    repeats: int = 10,
    sysctls=None,
) -> list[ThresholdPoint]:
    """Compare eager vs rendezvous bandwidth at each message size."""
    sizes = list(sizes) if sizes else log2_sizes(64 * 1024, 16 * MB)
    points = []
    for nbytes in sizes:
        eager_impl = impl.with_eager_threshold(max(nbytes + 1, nbytes * 2))
        rndv_impl = impl.with_eager_threshold(max(1, nbytes // 2))
        eager = mpi_pingpong(
            network, eager_impl, node_a, node_b, sizes=[nbytes],
            repeats=repeats, sysctls=sysctls,
        )
        rndv = mpi_pingpong(
            network, rndv_impl, node_a, node_b, sizes=[nbytes],
            repeats=repeats, sysctls=sysctls,
        )
        points.append(
            ThresholdPoint(
                nbytes,
                eager.bandwidth_at(nbytes),
                rndv.bandwidth_at(nbytes),
            )
        )
    return points


def measure_ideal_threshold(
    impl: MpiImplementation,
    network: Network,
    node_a: Node,
    node_b: Node,
    sizes=None,
    repeats: int = 10,
    sysctls=None,
) -> Size:
    """The smallest safe threshold: just above the largest eager-winning
    size (≈ "never use rendezvous" when eager wins everywhere), clamped to
    the implementation's maximum."""
    points = threshold_sweep(
        impl, network, node_a, node_b, sizes=sizes, repeats=repeats, sysctls=sysctls
    )
    losing = [p.nbytes for p in points if not p.eager_wins]
    if not losing:
        return Size(int(min(ABOVE_MAX, impl.max_eager_threshold)))
    # eager stops winning somewhere: threshold sits below the first loss
    return Size(int(min(min(losing), impl.max_eager_threshold)))
