"""The paper's tuning methodology (§4.2) as a reusable API.

:mod:`repro.tuning.advisor` computes bandwidth-delay products, derives the
sysctl and per-implementation settings the paper arrives at, and renders
them as the concrete commands/file edits of §4.2.1-4.2.2.
:mod:`repro.tuning.sweep` measures ideal eager/rendezvous thresholds
empirically (Table 5).
:mod:`repro.tuning.measure` closes the loop: per-link RTT/bandwidth
probes that feed the advisor with measurements instead of declared
topology constants.
"""

from repro.tuning.advisor import (
    GRID_BUFFER_BYTES,
    GRID_EAGER_THRESHOLD,
    TuningRecipe,
    advise_buffer_bytes,
    bdp_bytes,
    render_recipe,
    tune_for_grid,
)
from repro.tuning.measure import (
    LinkProbe,
    advise_eager_threshold,
    measured_buffer_bytes,
    probe_link,
    probe_network,
    worst_inter_site_pair,
)
from repro.tuning.sweep import measure_ideal_threshold, threshold_sweep

__all__ = [
    "GRID_BUFFER_BYTES",
    "GRID_EAGER_THRESHOLD",
    "LinkProbe",
    "TuningRecipe",
    "advise_buffer_bytes",
    "advise_eager_threshold",
    "bdp_bytes",
    "measure_ideal_threshold",
    "measured_buffer_bytes",
    "probe_link",
    "probe_network",
    "render_recipe",
    "threshold_sweep",
    "tune_for_grid",
    "worst_inter_site_pair",
]
