"""The paper's tuning methodology (§4.2) as a reusable API.

:mod:`repro.tuning.advisor` computes bandwidth-delay products, derives the
sysctl and per-implementation settings the paper arrives at, and renders
them as the concrete commands/file edits of §4.2.1-4.2.2.
:mod:`repro.tuning.sweep` measures ideal eager/rendezvous thresholds
empirically (Table 5).
"""

from repro.tuning.advisor import (
    TuningRecipe,
    advise_buffer_bytes,
    bdp_bytes,
    render_recipe,
    tune_for_grid,
)
from repro.tuning.sweep import measure_ideal_threshold, threshold_sweep

__all__ = [
    "TuningRecipe",
    "advise_buffer_bytes",
    "bdp_bytes",
    "measure_ideal_threshold",
    "render_recipe",
    "threshold_sweep",
    "tune_for_grid",
]
