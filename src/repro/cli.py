"""Command-line interface: ``repro list`` / ``run`` / ``explain`` /
``profile`` / ``lint`` / ``sanitize``.

Examples::

    repro list
    repro run table4
    repro run fig7 --full
    repro run all --fast
    repro run all --fast --jobs 8   # parallel orchestrator + result cache
    repro run all --no-cache --out results
    repro run fig6 --faults lossy-wan   # replay under a WAN fault scenario
    repro run fig7 --fast --trace   # record telemetry; Chrome trace to traces/
    repro run all --metrics-out m   # metric dumps (JSON + CSV) to m/
    repro explain fig7              # why the 128 kB rendezvous dip happens
    repro explain fig9              # the slow-start ramp, stack by stack
    repro explain fig10             # NPB phase x site-pair grid diagnosis
    repro flame fig10               # span analytics: frames, WAN matrix, path
    repro flame fig10 --collapsed   # collapsed stacks for external tools
    repro flame fig10 --svg --out f.svg   # deterministic flamegraph SVG
    repro profile table7            # cProfile hotspot table of one experiment
    repro profile fig9 --record     # also log the top rows to the manifest
    repro query fig7                # cached results + provenance, no re-run
    repro index rebuild             # rescan .repro-cache/ into index.json
    repro cache stats               # entry count, bytes, last campaign hits
    repro faults list               # the named fault scenarios
    repro lint                      # lint src/repro for determinism hazards
    repro lint --rules              # print the rule catalog
    repro lint --sarif lint.sarif   # write findings as a SARIF 2.1.0 log
    repro sanitize fig3             # double-run trace-hash determinism check
    repro sanitize fig7 --perturb   # adversarial same-timestamp reordering
    repro cache prune --max-size 256MB   # bound .repro-cache/, oldest first
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__


def _jobs_count(value: str) -> int:
    """``--jobs`` values: a strictly positive worker count.

    Rejecting 0/negative up front beats silently clamping: a caller asking
    for ``--jobs 0`` expected *something* ("auto"?), and quietly running
    serial would mask the misunderstanding.
    """
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}") from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1, got {jobs} "
            "(use --jobs 1 for a serial in-process run)"
        )
    return jobs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Comparison and tuning of MPI implementations "
            "in a grid context' (Hablot et al., 2007) on a simulated Grid'5000."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible tables and figures")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table4 or fig7, or 'all'")
    mode = run.add_mutually_exclusive_group()
    mode.add_argument(
        "--fast",
        action="store_true",
        help="reduced repeats/problem class (default)",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="paper-scale configuration (slow: class B, 100+ repeats)",
    )
    run.add_argument(
        "--jobs",
        "-j",
        type=_jobs_count,
        default=1,
        metavar="N",
        help="worker processes (>= 1); 1 (the default) runs serially "
        "in-process, N > 1 shards sweep experiments across a pool",
    )
    run.add_argument(
        "--faults",
        metavar="SCENARIO",
        default=None,
        help="run under a named WAN fault scenario (see 'repro faults list'); "
        "faulted results are cached separately from the clean ones",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the .repro-cache/ result cache",
    )
    run.add_argument(
        "--out",
        metavar="DIR",
        help="also write <id>.txt reports and json/<id>.json artifacts to DIR",
    )
    run.add_argument(
        "--bench",
        metavar="PATH",
        default=None,
        help="timing manifest location (default BENCH_experiments.json for "
        "multi-experiment campaigns)",
    )
    run.add_argument(
        "--trace",
        nargs="?",
        const="traces",
        default=None,
        metavar="DIR",
        help="record telemetry and write a Chrome trace-event JSON per "
        "experiment to DIR (default traces/; open in Perfetto or "
        "about:tracing).  Telemetry runs bypass the result cache.",
    )
    run.add_argument(
        "--metrics-out",
        metavar="DIR",
        default=None,
        help="record telemetry metrics and write <id>.metrics.json and "
        "<id>.metrics.csv per experiment to DIR",
    )

    faults = sub.add_parser(
        "faults", help="inspect the WAN fault-injection scenarios"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_sub.add_parser("list", help="list the named scenarios")

    lint = sub.add_parser(
        "lint", help="static determinism/unit-safety analysis of the source tree"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to enable exclusively (e.g. DET001,UNIT003)",
    )
    lint.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.add_argument(
        "--sarif",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write findings as a SARIF 2.1.0 log to PATH ('-' or no value: stdout)",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="suppression baseline to subtract (default: the checked-in "
        "analysis/baseline.json)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the suppression baseline",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings: rewrite the baseline file and exit 0 "
        "(each entry still needs its justification filled in)",
    )

    explain = sub.add_parser(
        "explain",
        help="diagnosis report: what the telemetry says about a figure",
    )
    explain.add_argument(
        "figure",
        choices=("fig7", "fig9", "fig10", "coll_hier"),
        help="figure/experiment to explain",
    )
    explain.add_argument(
        "--full", action="store_true", help="paper-scale probe runs (slower)"
    )
    explain.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        metavar="N",
        help="worker processes for the fig10 diagnosis campaign "
        "(the report is byte-identical for any value)",
    )

    flame = sub.add_parser(
        "flame",
        help="span analytics of one traced experiment: flamegraph, "
        "WAN-time matrix, critical path",
    )
    flame.add_argument("experiment", help="experiment id, e.g. fig10")
    flame.add_argument(
        "--full", action="store_true", help="paper-scale configuration (slow)"
    )
    flame.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        metavar="N",
        help="worker processes (the output is byte-identical for any value)",
    )
    flame_mode = flame.add_mutually_exclusive_group()
    flame_mode.add_argument(
        "--collapsed",
        action="store_true",
        help="emit collapsed stacks (`a;b;c ticks`) for external flamegraph tools",
    )
    flame_mode.add_argument(
        "--svg",
        action="store_true",
        help="emit a self-contained deterministic flamegraph SVG",
    )
    flame_mode.add_argument(
        "--site-pairs",
        action="store_true",
        help="emit only the per-site-pair WAN-time matrix",
    )
    flame.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the output to PATH instead of stdout",
    )

    profile = sub.add_parser(
        "profile", help="cProfile hotspot table of one experiment"
    )
    profile.add_argument("experiment", help="experiment id, e.g. table7")
    profile.add_argument(
        "--full", action="store_true", help="paper-scale configuration (slow)"
    )
    profile.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="number of functions to list (default 25)",
    )
    profile.add_argument(
        "--record",
        nargs="?",
        const="BENCH_experiments.json",
        default=None,
        metavar="PATH",
        help="also record the hotspot rows into the timing manifest "
        "(default BENCH_experiments.json)",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="runtime determinism check: run an experiment twice, compare trace hashes",
    )
    sanitize.add_argument("experiment", help="experiment id, e.g. fig3")
    sanitize.add_argument(
        "--runs", type=int, default=2, help="number of instrumented runs (default 2)"
    )
    sanitize.add_argument(
        "--full", action="store_true", help="paper-scale configuration (slow)"
    )
    sanitize.add_argument(
        "--perturb",
        action="store_true",
        help="re-run with adversarially permuted same-timestamp event ordering "
        "and require byte-identical results (schedule-sensitivity check)",
    )
    sanitize.add_argument(
        "--seeds",
        type=int,
        default=3,
        metavar="N",
        help="number of permutation seeds for --perturb (default 3)",
    )
    sanitize.add_argument(
        "--write-result",
        metavar="PATH",
        default=None,
        help="with --perturb: write the unperturbed run's rendered result to "
        "PATH (for golden diffs) and a .json report alongside",
    )
    sanitize.add_argument(
        "--result-only",
        action="store_true",
        help="with --perturb: gate on rendered-result byte-identity only, "
        "reporting (but not failing on) schedule-projection drift — for "
        "experiments whose timing tail legitimately depends on "
        "same-timestamp matching order (table6/table7)",
    )

    index = sub.add_parser(
        "index", help="manage the artifact index over cached results"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    rebuild = index_sub.add_parser(
        "rebuild",
        help="rescan the cache (and optional report dirs) into index.json",
    )
    rebuild.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="cache directory (default .repro-cache/)",
    )
    rebuild.add_argument(
        "--out",
        metavar="DIR",
        action="append",
        default=[],
        help="also index json/ artifacts under a 'repro run --out' directory "
        "(repeatable)",
    )

    query = sub.add_parser(
        "query",
        help="look up cached results and their provenance without re-running",
    )
    query.add_argument(
        "pattern",
        help="experiment / scenario / implementation substring, e.g. fig7, "
        "madeleine, ray2mesh",
    )
    query.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="cache directory (default .repro-cache/)",
    )
    query.add_argument(
        "--out",
        metavar="DIR",
        action="append",
        default=[],
        help="also search json/ artifacts under a 'repro run --out' directory "
        "(repeatable)",
    )
    query.add_argument(
        "--text",
        action="store_true",
        help="print each matching experiment's cached rendered report too",
    )

    cache = sub.add_parser("cache", help="manage the .repro-cache/ result store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser(
        "stats",
        help="entry count, on-disk bytes, and the last campaign's hit/miss "
        "counters",
    )
    stats.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="cache directory (default .repro-cache/)",
    )
    prune = cache_sub.add_parser(
        "prune",
        help="drop old entries: stale source digests accumulate forever otherwise",
    )
    prune.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="cache directory (default .repro-cache/)",
    )
    prune.add_argument(
        "--max-size",
        metavar="SIZE",
        default=None,
        help="size cap, oldest entries evicted first (e.g. 64MB; default 256MB "
        "when no --max-age-days is given)",
    )
    prune.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="D",
        help="also drop entries not written in the last D days",
    )
    prune.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    return parser


def _split_rules(text: "str | None") -> "list[str] | None":
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_lint(args) -> int:
    from repro.analysis.baseline import (
        BaselineError,
        load_baseline,
        partition,
        write_baseline,
    )
    from repro.analysis.linter import RULE_CATALOG, lint_paths, render_report

    if args.rules:
        for rule, description in sorted(RULE_CATALOG.items()):
            print(f"{rule}  {description}")
        return 0
    violations = lint_paths(
        args.paths or None,
        select=_split_rules(args.select),
        ignore=_split_rules(args.ignore),
    )
    if args.write_baseline:
        path = write_baseline(violations, path=args.baseline)
        print(f"wrote {len(violations)} entr{'y' if len(violations) == 1 else 'ies'} "
              f"to {path}; fill in each justification")
        return 0

    matched: list = []
    stale: list = []
    if not args.no_baseline:
        try:
            entries = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        # Stale entries are only meaningful on a full-tree run: a partial
        # lint legitimately misses entries for files it did not visit.
        violations, matched, stale = partition(violations, entries)
        if args.paths:
            stale = []

    if args.sarif is not None:
        from repro.analysis.export import render_sarif, sarif_report

        text = render_sarif(sarif_report(violations, baseline_matches=matched))
        if args.sarif == "-":
            print(text, end="")
        else:
            from pathlib import Path

            Path(args.sarif).write_text(text, encoding="utf-8")
            print(f"[sarif: {args.sarif}]", file=sys.stderr)
    if args.sarif != "-":
        print(render_report(violations))
        for entry in stale:
            print(
                f"stale baseline entry: {entry.path}:{entry.line}: {entry.rule} "
                "no longer fires — delete it"
            )
    return 1 if (violations or stale) else 0


def _cmd_sanitize(args) -> int:
    if args.perturb:
        from repro.analysis.perturb import perturb

        report = perturb(
            args.experiment,
            fast=not args.full,
            seeds=tuple(range(1, max(1, args.seeds) + 1)),
            require_projection=not args.result_only,
        )
        print(report.render())
        if args.write_result:
            import json
            from pathlib import Path

            out = Path(args.write_result)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(report.result_text + "\n", encoding="utf-8")
            json_path = out.with_suffix(out.suffix + ".perturb.json")
            json_path.write_text(
                json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
            )
            print(f"[result: {out}, report: {json_path}]", file=sys.stderr)
        return 0 if report.passed else 1

    from repro.analysis.sanitizer import sanitize

    report = sanitize(args.experiment, fast=not args.full, runs=args.runs)
    print(report.render())
    return 0 if report.deterministic else 1


def _cmd_cache(args) -> int:
    from repro.runner.cache import cache_stats, prune_cache
    from repro.units import parse_size

    if args.cache_command == "stats":
        print(cache_stats(root=args.root).render())
        return 0

    try:
        max_bytes = parse_size(args.max_size) if args.max_size else None
    except ValueError as exc:
        print(f"repro cache prune: {exc}", file=sys.stderr)
        return 2
    max_age = args.max_age_days * 86400.0 if args.max_age_days is not None else None
    report = prune_cache(
        root=args.root,
        max_bytes=max_bytes,
        max_age_seconds=max_age,
        dry_run=args.dry_run,
    )
    print(report.render())
    return 0


def _cmd_explain(args) -> int:
    from repro.obs.report import explain

    print(explain(args.figure, fast=not args.full, jobs=args.jobs))
    return 0


def _cmd_flame(args) -> int:
    from repro.experiments import get_experiment
    from repro.obs import aggregate as agg
    from repro.obs.flame import experiment_payload, render_collapsed, render_svg
    from repro.report import Table
    from repro.units import fmt_bytes

    get_experiment(args.experiment)  # unknown ids raise before simulating
    payload = experiment_payload(args.experiment, fast=not args.full, jobs=args.jobs)
    stacks = agg.collapsed_stacks(payload)

    if args.collapsed:
        text = render_collapsed(stacks)
    elif args.svg:
        text = render_svg(stacks, title=f"{args.experiment} span flamegraph")
    elif args.site_pairs:
        text = _flame_site_pairs(agg, payload, fmt_bytes, Table) + "\n"
    else:
        frames = agg.frame_stats(payload)
        top = Table(
            ["stack", "calls", "self s", "cum s"],
            title=f"{args.experiment}: top frames by self time "
            "(virtual seconds; one tick = 1 us)",
        )
        ranked = sorted(frames.values(), key=lambda f: (-f.self_ticks, f.key))
        for frame in ranked[:20]:
            top.add_row(
                [
                    frame.key,
                    frame.calls,
                    f"{frame.self_ticks / 1e6:.3f}",
                    f"{frame.cum_ticks / 1e6:.3f}",
                ]
            )
        chain = agg.critical_path(payload)
        crit = Table(
            ["depth", "span", "lane", "s"],
            title="critical path (longest last-finishing chain)",
        )
        for hop in chain:
            crit.add_row(
                [
                    hop["depth"],
                    hop["name"],
                    hop["lane"],
                    f"{hop['ticks'] / 1e6:.3f}",
                ]
            )
        text = "\n\n".join(
            [
                top.render(),
                _flame_site_pairs(agg, payload, fmt_bytes, Table),
                crit.render(),
            ]
        ) + "\n"

    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"[flame output: {out}]", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _flame_site_pairs(agg, payload, fmt_bytes, table_cls) -> str:
    matrix = agg.site_pair_matrix(payload)
    table = table_cls(
        [
            "site pair",
            "transfers",
            "bytes",
            "transmit s",
            "retransmits",
            "handshakes",
            "handshake s",
        ],
        title="WAN-time matrix (site-tagged tcp.transmit / rndv spans)",
    )
    for pair in sorted(matrix):
        cell = matrix[pair]
        table.add_row(
            [
                f"{pair[0]} -> {pair[1]}",
                cell.transfers,
                fmt_bytes(cell.bytes),
                f"{cell.transmit_ticks / 1e6:.3f}",
                cell.retransmits,
                cell.handshakes,
                f"{cell.handshake_ticks / 1e6:.3f}",
            ]
        )
    return table.render()


def _cmd_profile(args) -> int:
    from repro.experiments import get_experiment
    from repro.obs.profile import profile_report

    get_experiment(args.experiment)  # unknown ids raise before profiling
    report = profile_report(args.experiment, fast=not args.full, top=args.top)
    print(report.text)
    if args.record is not None:
        from repro.runner.manifest import record_profile

        path = record_profile(
            report.experiment_id,
            report.fast,
            report.rows,
            report.wall_s,
            path=args.record,
        )
        print(f"[profile recorded: {path}]", file=sys.stderr)
    return 0


def _cmd_index(args) -> int:
    from repro.runner.index import build_index

    document = build_index(cache_root=args.root, out_dirs=args.out)
    n = len(document.get("records", []))
    print(f"indexed {n} artifact{'' if n == 1 else 's'}")
    return 0


def _cmd_query(args) -> int:
    from repro.runner.index import artifact_text, query_index, render_query

    records = query_index(args.pattern, cache_root=args.root, out_dirs=args.out)
    print(render_query(args.pattern, records))
    if args.text:
        for record in records:
            text = artifact_text(record)
            if text:
                print()
                print(text)
    return 0 if records else 1


def _write_telemetry(campaign, trace_dir, metrics_dir) -> None:
    """Write per-experiment trace / metric exports for a telemetry campaign."""
    from pathlib import Path

    from repro.obs import (
        render_chrome_trace,
        render_metrics_csv,
        render_metrics_json,
    )

    for run in campaign.runs:
        if not run.ok or run.telemetry is None:
            continue
        if trace_dir is not None:
            out = Path(trace_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{run.experiment_id}.trace.json"
            path.write_text(
                render_chrome_trace(run.telemetry, label=run.experiment_id),
                encoding="utf-8",
            )
            print(f"[trace: {path}]", file=sys.stderr)
        if metrics_dir is not None:
            out = Path(metrics_dir)
            out.mkdir(parents=True, exist_ok=True)
            json_path = out / f"{run.experiment_id}.metrics.json"
            json_path.write_text(
                render_metrics_json(run.telemetry, label=run.experiment_id),
                encoding="utf-8",
            )
            csv_path = out / f"{run.experiment_id}.metrics.csv"
            csv_path.write_text(render_metrics_csv(run.telemetry), encoding="utf-8")
            print(f"[metrics: {json_path}, {csv_path}]", file=sys.stderr)


def _cmd_faults(args) -> int:
    from repro.faults import SCENARIOS

    width = max(len(name) for name in SCENARIOS)
    for name, scenario in SCENARIOS.items():
        print(f"{name:<{width}}  {scenario.description}")
        print(f"{'':<{width}}  [{scenario.describe()}]")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "index":
        return _cmd_index(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "flame":
        return _cmd_flame(args)
    if args.command == "profile":
        return _cmd_profile(args)

    from repro.experiments import EXPERIMENTS, get_experiment

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    from repro import faults
    from repro.runner import (
        ExperimentSpec,
        ResultCache,
        record_campaign,
        run_campaign,
    )

    fast = not args.full
    ids = sorted(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    for experiment_id in ids:
        get_experiment(experiment_id)  # unknown ids raise before any work runs
    # Unknown scenario names also raise (FaultConfigError) before any work.
    scenario = faults.get_scenario(args.faults) if args.faults else None

    telemetry = None
    if args.trace is not None or args.metrics_out is not None:
        from repro.obs import TelemetryConfig

        # --metrics-out alone records only the registry; --trace records
        # spans too (and implies metrics, so one flag gives both exports).
        telemetry = TelemetryConfig(spans=args.trace is not None, metrics=True)
        print("[telemetry on: result cache bypassed]", file=sys.stderr)

    cache = None
    if scenario is not None and scenario.active:
        # Faulted runs must never poison (or replay) the clean cache: the
        # scenario name joins every cache key as a salt, while closure-based
        # invalidation keeps working.  ``--faults none`` deliberately keeps
        # the clean keys — it *is* the clean configuration.
        cache = ResultCache(
            enabled=not args.no_cache,
            salt=f"faults={scenario.name}",
        )
        print(f"[faults: {scenario.name} — {scenario.describe()}]", file=sys.stderr)

    with faults.activated(scenario):
        campaign = run_campaign(
            [ExperimentSpec(experiment_id, fast=fast) for experiment_id in ids],
            jobs=args.jobs,
            cache=cache,
            use_cache=not args.no_cache,
            out_dir=args.out,
            telemetry=telemetry,
        )
    if telemetry is not None:
        _write_telemetry(campaign, args.trace, args.metrics_out)
    for run in campaign.runs:
        if not run.ok:
            continue
        print(run.text)
        suffix = ", cached" if run.cached else ""
        print(f"[{run.experiment_id}: {run.wall_s:.1f}s wall{suffix}]")
        print()
    for run in campaign.failures:
        print(f"[{run.experiment_id}: FAILED — {run.error}]", file=sys.stderr)
    print(f"[{campaign.cache_summary()}]", file=sys.stderr)
    if args.bench is not None or len(ids) > 1 or args.out:
        record_campaign(campaign, path=args.bench, label="repro run")
    return 0 if campaign.ok else 1


if __name__ == "__main__":
    sys.exit(main())
