"""Command-line interface: ``repro list`` / ``repro run <experiment>``.

Examples::

    repro list
    repro run table4
    repro run fig7 --full
    repro run all --fast
"""

from __future__ import annotations

import argparse
import sys
import time

from repro._version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Comparison and tuning of MPI implementations "
            "in a grid context' (Hablot et al., 2007) on a simulated Grid'5000."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible tables and figures")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table4 or fig7, or 'all'")
    mode = run.add_mutually_exclusive_group()
    mode.add_argument(
        "--fast",
        action="store_true",
        help="reduced repeats/problem class (default)",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="paper-scale configuration (slow: class B, 100+ repeats)",
    )
    return parser


def main(argv=None) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment

    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    fast = not args.full
    ids = sorted(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    for experiment_id in ids:
        started = time.monotonic()
        result = run_experiment(experiment_id, fast=fast)
        elapsed = time.monotonic() - started
        print(result.text)
        print(f"[{result.experiment_id}: {elapsed:.1f}s wall]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
