"""Command-line interface: ``repro list`` / ``run`` / ``lint`` / ``sanitize``.

Examples::

    repro list
    repro run table4
    repro run fig7 --full
    repro run all --fast
    repro run all --fast --jobs 8   # parallel orchestrator + result cache
    repro run all --no-cache --out results
    repro lint                      # lint src/repro for determinism hazards
    repro lint --rules              # print the rule catalog
    repro sanitize fig3             # double-run trace-hash determinism check
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Comparison and tuning of MPI implementations "
            "in a grid context' (Hablot et al., 2007) on a simulated Grid'5000."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible tables and figures")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table4 or fig7, or 'all'")
    mode = run.add_mutually_exclusive_group()
    mode.add_argument(
        "--fast",
        action="store_true",
        help="reduced repeats/problem class (default)",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="paper-scale configuration (slow: class B, 100+ repeats)",
    )
    run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; >1 shards sweep experiments across a pool",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the .repro-cache/ result cache",
    )
    run.add_argument(
        "--out",
        metavar="DIR",
        help="also write <id>.txt reports and json/<id>.json artifacts to DIR",
    )
    run.add_argument(
        "--bench",
        metavar="PATH",
        default=None,
        help="timing manifest location (default BENCH_experiments.json for "
        "multi-experiment campaigns)",
    )

    lint = sub.add_parser(
        "lint", help="static determinism/unit-safety analysis of the source tree"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to enable exclusively (e.g. DET001,UNIT003)",
    )
    lint.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="runtime determinism check: run an experiment twice, compare trace hashes",
    )
    sanitize.add_argument("experiment", help="experiment id, e.g. fig3")
    sanitize.add_argument(
        "--runs", type=int, default=2, help="number of instrumented runs (default 2)"
    )
    sanitize.add_argument(
        "--full", action="store_true", help="paper-scale configuration (slow)"
    )
    return parser


def _split_rules(text: "str | None") -> "list[str] | None":
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_lint(args) -> int:
    from repro.analysis.linter import RULE_CATALOG, lint_paths, render_report

    if args.rules:
        for rule, description in sorted(RULE_CATALOG.items()):
            print(f"{rule}  {description}")
        return 0
    violations = lint_paths(
        args.paths or None,
        select=_split_rules(args.select),
        ignore=_split_rules(args.ignore),
    )
    print(render_report(violations))
    return 1 if violations else 0


def _cmd_sanitize(args) -> int:
    from repro.analysis.sanitizer import sanitize

    report = sanitize(args.experiment, fast=not args.full, runs=args.runs)
    print(report.render())
    return 0 if report.deterministic else 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)

    from repro.experiments import EXPERIMENTS, get_experiment

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    from repro.runner import ExperimentSpec, record_campaign, run_campaign

    fast = not args.full
    ids = sorted(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    for experiment_id in ids:
        get_experiment(experiment_id)  # unknown ids raise before any work runs

    campaign = run_campaign(
        [ExperimentSpec(experiment_id, fast=fast) for experiment_id in ids],
        jobs=max(1, args.jobs),
        use_cache=not args.no_cache,
        out_dir=args.out,
    )
    for run in campaign.runs:
        if not run.ok:
            continue
        print(run.text)
        suffix = ", cached" if run.cached else ""
        print(f"[{run.experiment_id}: {run.wall_s:.1f}s wall{suffix}]")
        print()
    for run in campaign.failures:
        print(f"[{run.experiment_id}: FAILED — {run.error}]", file=sys.stderr)
    if args.bench is not None or len(ids) > 1 or args.out:
        record_campaign(campaign, path=args.bench, label="repro run")
    return 0 if campaign.ok else 1


if __name__ == "__main__":
    sys.exit(main())
