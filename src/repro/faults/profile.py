"""Per-connection WAN fault knobs, consumed by :mod:`repro.tcp.connection`.

A :class:`FaultProfile` perturbs one TCP connection deterministically: every
random decision is drawn from a named :class:`repro.sim.rng.RngRegistry`
stream derived from ``(profile.seed, direction name)``, so the same profile
on the same topology reproduces the same loss pattern byte-for-byte — in a
serial run, on a process pool, and across machines.

The profile composes with (never replaces) the simulator's deterministic
loss model: queue overflow, slow-start overshoot and BIC probing losses
still fire exactly as without faults; injected losses are *additional*
window cuts, the way real WAN packet drops hit a stream on top of its own
self-induced congestion losses.

``None`` (the default everywhere) means the clean dedicated path of the
paper's testbed; results are then bit-identical to a build without this
module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultConfigError


@dataclass(frozen=True)
class FaultProfile:
    """Deterministic, seeded degradation of one TCP connection.

    All effects are gated on ``wan_only`` (default: intra-cluster routes
    stay clean, mirroring the paper's pathologies which live on the
    RENATER WAN path).
    """

    #: master seed of the profile's random streams
    seed: int = 0
    #: probability of an injected loss event per window-limited RTT round
    loss_prob: float = 0.0
    #: extra one-way delay per message, uniform in
    #: ``[0, jitter_frac * one_way_delay]``
    jitter_frac: float = 0.0
    #: multiplier on the route RTT (>= 1; models a degraded/longer path)
    rtt_inflation: float = 1.0
    #: apply only to inter-site routes (intra-cluster stays clean)
    wan_only: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_prob < 1.0:
            raise FaultConfigError(
                f"loss_prob must be in [0, 1), got {self.loss_prob}"
            )
        if self.jitter_frac < 0.0:
            raise FaultConfigError(
                f"jitter_frac must be >= 0, got {self.jitter_frac}"
            )
        if self.rtt_inflation < 1.0:
            raise FaultConfigError(
                f"rtt_inflation must be >= 1, got {self.rtt_inflation}"
            )

    @property
    def active(self) -> bool:
        """Whether the profile perturbs anything at all."""
        return (
            self.loss_prob > 0.0
            or self.jitter_frac > 0.0
            or self.rtt_inflation > 1.0
        )

    def applies_to(self, inter_site: bool) -> bool:
        """Whether this profile touches a route of the given kind."""
        return self.active and (inter_site or not self.wan_only)

    def describe(self) -> str:
        parts = []
        if self.loss_prob > 0.0:
            parts.append(f"loss={self.loss_prob:g}/round")
        if self.jitter_frac > 0.0:
            parts.append(f"jitter<={self.jitter_frac:g}x")
        if self.rtt_inflation > 1.0:
            parts.append(f"rtt x{self.rtt_inflation:g}")
        scope = "wan" if self.wan_only else "all links"
        return f"{', '.join(parts) or 'clean'} ({scope}, seed={self.seed})"
