"""Deterministic WAN fault injection.

Two layers, both seeded through :class:`repro.sim.rng.RngRegistry` so any
faulted run is byte-reproducible:

* :class:`FaultProfile` — per-connection effects (injected loss events,
  delay jitter, RTT inflation), attached to
  :class:`repro.tcp.connection.TcpOptions` explicitly by an experiment;
* :class:`FaultScenario` — a named bundle of a profile plus network-level
  pathologies (cross-traffic bursts, link flaps) installed whenever a
  :class:`~repro.tcp.connection.Fabric` is built while the scenario is
  *active*.

Ambient activation (used by ``repro run --faults <name>``) follows the
same pattern as :func:`repro.sim.core.install_trace_sink`: a process-global
stack consulted at fabric construction time, so experiments that build
their simulation environments internally pick the scenario up without
threading a parameter through every layer::

    with faults.activated("lossy-wan"):
        run_experiment("fig6", fast=True)   # every WAN connection degraded

Nothing is active by default; the ``none`` scenario is equivalent to no
scenario at all and keeps results bit-identical to the committed goldens.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.faults.profile import FaultProfile
from repro.faults.scenarios import (
    SCENARIOS,
    CrossTraffic,
    FaultScenario,
    LinkFlap,
    get_scenario,
)

__all__ = [
    "SCENARIOS",
    "CrossTraffic",
    "FaultProfile",
    "FaultScenario",
    "LinkFlap",
    "activate",
    "activated",
    "active_scenario",
    "deactivate",
    "get_scenario",
]

#: stack of ambient scenarios; the innermost activation wins
_ACTIVE: list[FaultScenario] = []


def activate(scenario: Union[FaultScenario, str]) -> FaultScenario:
    """Push ``scenario`` (or a registered scenario name) onto the ambient
    stack; every fabric built afterwards applies it."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    _ACTIVE.append(scenario)
    return scenario


def deactivate() -> None:
    """Pop the innermost ambient scenario (no-op when none is active)."""
    if _ACTIVE:
        _ACTIVE.pop()


def active_scenario() -> Optional[FaultScenario]:
    """The innermost ambient scenario, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activated(
    scenario: "FaultScenario | str | None",
) -> Iterator[Optional[FaultScenario]]:
    """Context manager: ambient activation scoped to the block.

    ``None`` is accepted and activates nothing, so callers can pass an
    optional scenario straight through.
    """
    if scenario is None:
        yield None
        return
    active = activate(scenario)
    try:
        yield active
    finally:
        deactivate()
