"""Named WAN fault scenarios: connection faults + network-level pathologies.

A :class:`FaultScenario` bundles

* a :class:`repro.faults.profile.FaultProfile` substituted into every TCP
  connection the :class:`repro.tcp.connection.Fabric` creates (unless the
  connection already carries an explicit profile), and
* *network-level* faults installed into the simulation when a fabric is
  built: background cross-traffic bursts competing for the site WAN access
  pipes, and transient link flaps that temporarily collapse a pipe's
  capacity.

Everything is driven by named streams of one ``RngRegistry(seed)``, so a
scenario is exactly as reproducible as the clean simulation: the same
scenario + seed yields byte-identical experiment reports, serial or
parallel.  The ``none`` scenario installs nothing and leaves every byte of
the committed goldens unchanged.

Background processes are bounded by ``horizon_s`` of *virtual* time so a
drained event queue still terminates (``Environment.run()`` with no
``until`` would otherwise spin forever on an eternal traffic generator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import FaultConfigError
from repro.faults.profile import FaultProfile
from repro.obs import runtime as _obs
from repro.sim.rng import RngRegistry
from repro.units import Mbps

if TYPE_CHECKING:  # imported lazily to keep this module import-light
    from repro.net.fluid import FluidNetwork, Pipe
    from repro.net.topology import Network
    from repro.sim.core import Environment


@dataclass(frozen=True)
class CrossTraffic:
    """Bursty background flows sharing the WAN access pipes.

    Each pipe gets an on/off source: a burst of ``rate_bps`` lasting about
    ``burst_s`` (uniformly 0.5x-1.5x), then a silence of about ``gap_s``.
    """

    rate_bps: float
    burst_s: float = 0.5
    gap_s: float = 0.5

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise FaultConfigError("cross-traffic rate must be positive")
        if self.burst_s <= 0 or self.gap_s <= 0:
            raise FaultConfigError("cross-traffic burst/gap must be positive")


@dataclass(frozen=True)
class LinkFlap:
    """Transient capacity collapses of the WAN access pipes.

    About every ``period_s`` (uniformly 0.5x-1.5x) a pipe drops to
    ``capacity_factor`` of its nominal capacity for ``duration_s``.
    """

    period_s: float
    duration_s: float
    capacity_factor: float = 0.1

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.duration_s <= 0:
            raise FaultConfigError("flap period/duration must be positive")
        if not 0.0 < self.capacity_factor < 1.0:
            raise FaultConfigError("flap capacity_factor must be in (0, 1)")


def _cross_traffic_source(
    env: "Environment",
    fluid: "FluidNetwork",
    pipe: "Pipe",
    spec: CrossTraffic,
    rng,
    horizon_s: float,
):
    """Generator process: on/off background bursts on one pipe."""
    while env.now < horizon_s:
        burst_s = spec.burst_s * (0.5 + float(rng.random()))
        nbytes = spec.rate_bps * burst_s / 8.0
        sess = _obs.ACTIVE
        if sess is not None and sess.metrics:
            sess.count("faults.cross_traffic_bursts", pipe=pipe.name)
            sess.count("faults.cross_traffic_bytes", inc=nbytes, pipe=pipe.name)
        flow = fluid.start_flow(
            f"faults.xtraffic.{pipe.name}",
            (pipe,),
            nbytes,
            rate_cap_bps=spec.rate_bps,
        )
        yield flow.done
        yield env.timeout(spec.gap_s * (0.5 + float(rng.random())))


def _link_flapper(
    env: "Environment",
    fluid: "FluidNetwork",
    pipe: "Pipe",
    spec: LinkFlap,
    rng,
    horizon_s: float,
):
    """Generator process: periodic transient capacity drops on one pipe."""
    nominal = pipe.capacity_bps
    while True:
        wait = spec.period_s * (0.5 + float(rng.random()))
        if env.now + wait >= horizon_s:
            return
        yield env.timeout(wait)
        fluid.set_pipe_capacity(pipe, nominal * spec.capacity_factor)
        sess = _obs.ACTIVE
        if sess is not None:
            if sess.spans:
                sess.instant(
                    env.now, "fault.flap.down", "faults", f"pipe:{pipe.name}",
                    {"capacity_factor": spec.capacity_factor},
                )
            if sess.metrics:
                sess.count("faults.link_flaps", pipe=pipe.name)
                sess.count(
                    "faults.flap_down_seconds", inc=spec.duration_s, pipe=pipe.name
                )
        yield env.timeout(spec.duration_s)
        fluid.set_pipe_capacity(pipe, nominal)
        sess = _obs.ACTIVE
        if sess is not None and sess.spans:
            sess.instant(env.now, "fault.flap.up", "faults", f"pipe:{pipe.name}", None)


@dataclass(frozen=True)
class FaultScenario:
    """A named, seeded WAN degradation."""

    name: str
    description: str
    seed: int = 0
    #: substituted into TCP connections without an explicit profile
    profile: Optional[FaultProfile] = None
    cross_traffic: Optional[CrossTraffic] = None
    link_flaps: Optional[LinkFlap] = None
    #: virtual-time horizon of the background fault processes
    horizon_s: float = 120.0

    @property
    def active(self) -> bool:
        return (
            (self.profile is not None and self.profile.active)
            or self.cross_traffic is not None
            or self.link_flaps is not None
        )

    def install(
        self,
        env: "Environment",
        network: "Network",
        fluid: "FluidNetwork",
    ) -> None:
        """Start this scenario's network-level fault processes.

        Called once per fabric (i.e. once per simulation); connection-level
        effects ride on :attr:`profile` instead and need no installation.
        """
        if self.cross_traffic is None and self.link_flaps is None:
            return
        rngs = RngRegistry(self.seed)
        for pipe in network.wan_pipes():
            if self.cross_traffic is not None:
                env.process(
                    _cross_traffic_source(
                        env,
                        fluid,
                        pipe,
                        self.cross_traffic,
                        rngs.stream(f"faults.xtraffic.{pipe.name}"),
                        self.horizon_s,
                    ),
                    name=f"faults.xtraffic.{pipe.name}",
                )
            if self.link_flaps is not None:
                env.process(
                    _link_flapper(
                        env,
                        fluid,
                        pipe,
                        self.link_flaps,
                        rngs.stream(f"faults.flap.{pipe.name}"),
                        self.horizon_s,
                    ),
                    name=f"faults.flap.{pipe.name}",
                )

    def describe(self) -> str:
        parts = []
        if self.profile is not None and self.profile.active:
            parts.append(self.profile.describe())
        if self.cross_traffic is not None:
            parts.append(
                f"cross-traffic {self.cross_traffic.rate_bps / 1e6:.0f} Mbps bursts"
            )
        if self.link_flaps is not None:
            parts.append(
                f"flaps to {self.link_flaps.capacity_factor:.0%} every "
                f"~{self.link_flaps.period_s:g}s"
            )
        return "; ".join(parts) or "no faults (clean dedicated path)"


#: fixed scenario seed: nothing magic, just stable across releases
_SCENARIO_SEED = 20071126

SCENARIOS: dict[str, FaultScenario] = {
    scenario.name: scenario
    for scenario in (
        FaultScenario(
            name="none",
            description="clean dedicated 1 Gbps path (the paper's testbed)",
        ),
        FaultScenario(
            name="lossy-wan",
            description="2% injected loss per WAN window round",
            seed=_SCENARIO_SEED,
            profile=FaultProfile(seed=_SCENARIO_SEED, loss_prob=0.02),
        ),
        FaultScenario(
            name="jittery-wan",
            description="up to +25% one-way delay jitter on the WAN",
            seed=_SCENARIO_SEED,
            profile=FaultProfile(seed=_SCENARIO_SEED, jitter_frac=0.25),
        ),
        FaultScenario(
            name="slow-wan",
            description="WAN RTT inflated 2x (rerouted/overloaded backbone)",
            seed=_SCENARIO_SEED,
            profile=FaultProfile(seed=_SCENARIO_SEED, rtt_inflation=2.0),
        ),
        FaultScenario(
            name="cross-traffic",
            description="400 Mbps background bursts on every site access link",
            seed=_SCENARIO_SEED,
            cross_traffic=CrossTraffic(rate_bps=Mbps(400)),
        ),
        FaultScenario(
            name="flaky-link",
            description="access links flap to 10% capacity for 0.5s every ~2s",
            seed=_SCENARIO_SEED,
            link_flaps=LinkFlap(period_s=2.0, duration_s=0.5, capacity_factor=0.1),
        ),
        FaultScenario(
            name="degraded-grid",
            description="combined mild loss + jitter + cross-traffic",
            seed=_SCENARIO_SEED,
            profile=FaultProfile(
                seed=_SCENARIO_SEED, loss_prob=0.01, jitter_frac=0.1
            ),
            cross_traffic=CrossTraffic(rate_bps=Mbps(200)),
        ),
    )
}


def get_scenario(name: str) -> FaultScenario:
    try:
        return SCENARIOS[name.lower()]
    except KeyError:
        raise FaultConfigError(
            f"unknown fault scenario {name!r}; have {sorted(SCENARIOS)}"
        ) from None
