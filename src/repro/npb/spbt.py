"""SP and BT — ADI / block-tridiagonal solvers on a square process grid.

Both use the multi-partition decomposition: every iteration exchanges the
six ghost faces (large messages), then performs three directional line
solves, each a ``sqrt(P)-1``-stage pipeline of forward elimination
(large interface blocks) followed by back-substitution (smaller blocks).

Table 2 (16 ranks): per rank per iteration both codes send ~15 large and
~9 medium messages; BT's mediums are ~26 kB and SP's ~50 kB, and SP runs
2x the iterations.  "BT and SP send a lot of big messages" — which is
why the WAN latency hurts them relatively little (Fig. 12) but their
bandwidth demand is high.

MPICH-Madeleine could not finish either on the grid (§4.3, "application
timeout"); the suite honours ``impl.known_failures`` for this.
"""

from __future__ import annotations

from repro.npb.common import (
    PROBLEM,
    per_rank_flops,
    phase,
    sampled_loop,
    validate_config,
)


def _make_program(name: str, cls: str, nprocs: int, sample_iters=None):
    validate_config(name, cls, nprocs)
    params = PROBLEM[name][cls]
    n, niter = params["n"], params["niter"]
    q = int(round(nprocs**0.5))  # process grid side
    # One exchanged face: 5 solution components over an n x n plane slice.
    face_bytes = max(256, 5 * 8 * n * n // q)
    # Back-substitution interface blocks (Table 2: BT ~face/6, SP ~face/3).
    backsub_bytes = max(128, face_bytes // (6 if name == "bt" else 3))
    flops_per_iter = per_rank_flops(name, cls, nprocs) / niter

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        row, col = divmod(rank, q)

        def ring(index: int, side: int, along_rows: bool):
            """Successor on the (cyclic) pipeline of a directional solve."""
            if along_rows:
                return row * q + (col + side) % q
            return ((row + side) % q) * q + col

        def copy_faces():
            # Six ghost-face exchanges with the four grid neighbours
            # (x and y with both 2D neighbours, z within the multipartition
            # cells — modelled as the diagonal neighbour pair).  Each axis
            # uses the deadlock-free shift pattern: send towards +, receive
            # from -, then the reverse.
            axes = [
                (ring(0, +1, True), ring(0, -1, True)),
                (ring(0, +1, False), ring(0, -1, False)),
                ((rank + q + 1) % nprocs, (rank - q - 1) % nprocs),
            ]
            for plus, minus in axes:
                if plus == rank:
                    continue
                yield from comm.sendrecv(plus, face_bytes, src=minus)
                yield from comm.sendrecv(minus, face_bytes, src=plus)

        def line_solve(axis: str):
            """One directional sweep: q-1 forward stages then q-1 back.

            x sweeps left->right along rows, y top->bottom along columns,
            z right->left along rows (the multipartition cells traverse
            the grid in a third, distinct order).
            """
            if axis == "x":
                coord = col
                succ = rank + 1 if col < q - 1 else rank
                pred = rank - 1 if col > 0 else rank
            elif axis == "y":
                coord = row
                succ = rank + q if row < q - 1 else rank
                pred = rank - q if row > 0 else rank
            else:  # z: reverse row order
                coord = q - 1 - col
                succ = rank - 1 if col > 0 else rank
                pred = rank + 1 if col < q - 1 else rank
            if q == 1:
                yield from ctx.compute(flops_per_iter / 6)
                return
            # forward elimination: pipeline head starts, others wait
            if coord > 0:
                yield from comm.recv(pred, 2)
            yield from ctx.compute(flops_per_iter / 12)
            if coord < q - 1:
                yield from comm.send(succ, face_bytes, tag=2)
            # back substitution: flows the other way with smaller blocks
            if coord < q - 1:
                yield from comm.recv(succ, 3)
            yield from ctx.compute(flops_per_iter / 12)
            if coord > 0:
                yield from comm.send(pred, backsub_bytes, tag=3)

        def iteration(_it):
            yield from phase(ctx, "copy_faces", copy_faces())
            for axis in ("x", "y", "z"):
                yield from phase(ctx, f"line_solve_{axis}", line_solve(axis))
            yield from phase(ctx, "compute", ctx.compute(flops_per_iter / 2))

        def residual():
            # final residual norms
            yield from comm.allreduce(None, nbytes=40)

        yield from sampled_loop(ctx, niter, sample_iters, iteration)
        yield from phase(ctx, "residual", residual())

    return program


def make_sp_program(cls: str, nprocs: int, sample_iters=None):
    return _make_program("sp", cls, nprocs, sample_iters)


def make_bt_program(cls: str, nprocs: int, sample_iters=None):
    return _make_program("bt", cls, nprocs, sample_iters)


def make_verify_program(nprocs: int, stages_value: float = 2.0):
    """Pipeline dependency check for the line solve: a value accumulated
    through the forward stages and corrected on the way back must match
    the closed-form result on every rank."""
    q = int(round(nprocs**0.5))
    if q * q != nprocs:
        from repro.errors import WorkloadError

        raise WorkloadError("SP/BT verification needs a square rank count")

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        row, col = divmod(rank, q)
        succ = row * q + (col + 1) % q
        pred = row * q + (col - 1) % q
        # forward: prefix sum along the row
        acc = float(col + 1)
        if col > 0:
            upstream, _ = yield from comm.recv(pred, 2)
            acc += upstream
        if col < q - 1:
            yield from comm.send(succ, 64, tag=2, payload=acc)
        # backward: everyone learns the row total
        if col < q - 1:
            total, _ = yield from comm.recv(succ, 3)
        else:
            total = acc
        if col > 0:
            yield from comm.send(pred, 64, tag=3, payload=total)
        expected_total = q * (q + 1) / 2
        expected_acc = (col + 1) * (col + 2) / 2
        return acc == expected_acc and total == expected_total

    return program
