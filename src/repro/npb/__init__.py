"""The NAS Parallel Benchmarks (NPB 2.4) as simulation workloads.

Each benchmark module provides

``make_program(cls, nprocs, sample_iters=None)``
    the *timing skeleton*: the benchmark's real communication schedule
    (process grid, neighbours, message sizes and counts per iteration,
    collective choices) with computation charged from calibrated
    per-class operation counts.  ``sample_iters`` simulates only that
    many iterations and extrapolates the rest — statistically identical
    steady-state iterations make this accurate and it keeps class-B LU
    (1.2M messages) tractable.

``make_verify_program(nprocs)``
    a small *verification kernel* that pushes real numpy data through the
    same communication pattern and checks numerical ground truth —
    evidence that the skeleton's dataflow (dependencies, neighbours,
    collectives) is the real one.

The suite runner (:mod:`repro.npb.suite`) mirrors the paper's
methodology: best of N runs, optional timeout (MPICH-Madeleine's BT/SP
failure), traced traffic for Table 2.
"""

from repro.npb.common import (
    BENCHMARK_NAMES,
    CLASS_NAMES,
    COMM_TYPE,
    FLOP_COUNTS,
    validate_config,
)
from repro.npb.suite import (
    KnownFailure,
    NpbResult,
    get_benchmark,
    locate_known_failure,
    run_npb,
    run_suite,
)

__all__ = [
    "BENCHMARK_NAMES",
    "CLASS_NAMES",
    "COMM_TYPE",
    "FLOP_COUNTS",
    "KnownFailure",
    "NpbResult",
    "locate_known_failure",
    "get_benchmark",
    "run_npb",
    "run_suite",
    "validate_config",
]
