"""FT — 3D FFT of a complex field.

The paper characterises FT's communication as collective and dominated by
``MPI_Bcast`` (Table 2, §4.3: "FT takes advantage of the optimization
done on the MPI_Bcast primitive in GridMPI"), so the skeleton follows the
paper: every iteration redistributes the evolved volume — modelled as a
broadcast of one rank's local slab (``16 * nx*ny*nz / P`` bytes of
complex doubles, the transpose volume per rank) — plus the tiny checksum
allreduce.  This bandwidth-bound broadcast is exactly where Van de
Geijn's scatter+ring beats the binomial tree, producing GridMPI's big FT
win on the grid (Fig. 10).
"""

from __future__ import annotations

import numpy as np

from repro.mpi.constants import SUM
from repro.npb.common import (
    PROBLEM,
    per_rank_flops,
    sampled_loop,
    validate_config,
    verify_rng,
)


def make_program(cls: str, nprocs: int, sample_iters=None):
    validate_config("ft", cls, nprocs)
    params = PROBLEM["ft"][cls]
    nx, ny, nz, niter = params["nx"], params["ny"], params["nz"], params["niter"]
    slab_bytes = 16 * nx * ny * nz // nprocs
    flops_per_iter = per_rank_flops("ft", cls, nprocs) / niter

    def program(ctx):
        comm = ctx.comm
        # initial parameter broadcasts (Table 2's 1 B control messages)
        for _ in range(3):
            yield from comm.bcast(None, nbytes=1, root=0)

        def iteration(it):
            # local FFT work
            yield from ctx.compute(flops_per_iter)
            # volume redistribution, root rotating across ranks
            yield from comm.bcast(None, nbytes=slab_bytes, root=it % comm.size)
            # checksum
            yield from comm.allreduce(None, nbytes=16, op=SUM)

        yield from sampled_loop(ctx, niter, sample_iters, iteration)

    return program


def make_verify_program(nprocs: int, n: int = 32):
    """Real math: a distributed 3D FFT by slab decomposition — local 2D
    FFTs, a slab exchange (allgather, the volume redistribution), then the
    final-axis FFT — must match ``numpy.fft.fftn`` exactly."""
    rng = verify_rng("ft")
    volume = rng.standard_normal((n, n, n)) + 1j * rng.standard_normal((n, n, n))
    expected = np.fft.fftn(volume)
    slabs = n // nprocs

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        lo, hi = rank * slabs, (rank + 1) * slabs
        # FFT over the two local axes of my x-slabs
        local = np.fft.fft(np.fft.fft(volume[lo:hi], axis=1), axis=2)
        # redistribute so every rank can transform the remaining axis
        blocks = yield from comm.allgather(local, nbytes_each=local.nbytes)
        full = np.concatenate([np.asarray(b) for b in blocks], axis=0)
        result = np.fft.fft(full, axis=0)
        ok = np.allclose(result, expected, atol=1e-9)
        # checksum allreduce as in the benchmark
        checksum = yield from comm.allreduce(
            complex(result.sum()) / nprocs, nbytes=16, op=SUM
        )
        return bool(ok) and np.isclose(checksum, complex(expected.sum()))

    return program
