"""MG — MultiGrid V-cycles on a 3D grid.

The n^3 grid is decomposed across a 3D process grid; each V-cycle
descends through log2 levels, exchanging the six ghost faces at every
level (face bytes shrink 4x per level — Table 2's "various sizes from
4 B to 130 kB"), then ascends interpolating.  Periodic boundaries mean
every rank has six neighbours at every level.
"""

from __future__ import annotations

import numpy as np

from repro.npb.common import (
    PROBLEM,
    grid_3d,
    per_rank_flops,
    phase,
    sampled_loop,
    validate_config,
    verify_rng,
)


def _neighbours(coords, dims):
    """The six (dim, direction) neighbour ranks on a periodic 3D grid."""
    px, py, pz = dims
    cx, cy, cz = coords

    def rank_of(x, y, z):
        return (x % px) * py * pz + (y % py) * pz + (z % pz)

    return [
        rank_of(cx - 1, cy, cz),
        rank_of(cx + 1, cy, cz),
        rank_of(cx, cy - 1, cz),
        rank_of(cx, cy + 1, cz),
        rank_of(cx, cy, cz - 1),
        rank_of(cx, cy, cz + 1),
    ]


def make_program(cls: str, nprocs: int, sample_iters=None):
    validate_config("mg", cls, nprocs)
    params = PROBLEM["mg"][cls]
    n, nit = params["n"], params["nit"]
    dims = grid_3d(nprocs)
    levels = max(1, int(np.log2(n)) - 1)
    flops_per_iter = per_rank_flops("mg", cls, nprocs) / nit

    # local subgrid extents at the top level
    local = (n // dims[0], n // dims[1], n // dims[2])

    def face_bytes(level: int) -> int:
        # top level: the largest face of the local block; each level
        # halves every dimension (so faces shrink 4x).
        shrink = 2 ** (levels - 1 - level)
        fx = max(1, local[1] // shrink) * max(1, local[2] // shrink)
        fy = max(1, local[0] // shrink) * max(1, local[2] // shrink)
        fz = max(1, local[0] // shrink) * max(1, local[1] // shrink)
        return [8 * fx, 8 * fx, 8 * fy, 8 * fy, 8 * fz, 8 * fz]

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        px, py, pz = dims
        coords = (rank // (py * pz), (rank // pz) % py, rank % pz)
        nbrs = _neighbours(coords, dims)

        def exchange(level):
            sizes = face_bytes(level)
            for axis in range(3):
                minus, plus = nbrs[2 * axis], nbrs[2 * axis + 1]
                nbytes = sizes[2 * axis]
                if minus == rank:  # periodic wrap onto self: no traffic
                    continue
                yield from comm.sendrecv(plus, nbytes, src=minus)
                yield from comm.sendrecv(minus, nbytes, src=plus)

        def exchange_down():
            # downward: residual + restriction at each level
            for level in reversed(range(levels)):
                yield from exchange(level)

        def exchange_up():
            # upward: interpolation + smoothing at each level
            for level in range(levels):
                yield from exchange(level)

        def iteration(_it):
            yield from phase(ctx, "exchange_down", exchange_down())
            yield from phase(ctx, "exchange_up", exchange_up())
            yield from phase(ctx, "compute", ctx.compute(flops_per_iter))

        def residual():
            # final L2 norm of the residual
            yield from comm.allreduce(0.0, nbytes=8)

        yield from sampled_loop(ctx, nit, sample_iters, iteration)
        yield from phase(ctx, "residual", residual())

    return program


def make_verify_program(nprocs: int, n: int = 64, iters: int = 25):
    """Real math: 1D Jacobi smoothing with halo exchange must match the
    serial computation exactly."""
    rng = verify_rng("mg")
    initial = rng.standard_normal(n)

    def serial(u0):
        u = u0.copy()
        for _ in range(iters):
            padded = np.concatenate([[0.0], u, [0.0]])
            u = 0.25 * padded[:-2] + 0.5 * padded[1:-1] + 0.25 * padded[2:]
        return u

    expected = serial(initial)
    chunk = n // nprocs

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        lo, hi = rank * chunk, (rank + 1) * chunk
        u = initial[lo:hi].copy()
        left, right = rank - 1, rank + 1
        for _ in range(iters):
            ghost_left, ghost_right = 0.0, 0.0
            reqs = []
            if left >= 0:
                reqs.append(comm.isend(left, 8, tag=1, payload=float(u[0])))
            if right < nprocs:
                reqs.append(comm.isend(right, 8, tag=2, payload=float(u[-1])))
            if left >= 0:
                ghost_left, _ = yield from comm.recv(left, 2)
            if right < nprocs:
                ghost_right, _ = yield from comm.recv(right, 1)
            yield from comm.waitall(reqs)
            padded = np.concatenate([[ghost_left], u, [ghost_right]])
            u = 0.25 * padded[:-2] + 0.5 * padded[1:-1] + 0.25 * padded[2:]
        blocks = yield from comm.allgather(u, nbytes_each=u.nbytes)
        result = np.concatenate(blocks)
        return bool(np.allclose(result, expected, atol=1e-12))

    return program
