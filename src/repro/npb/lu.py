"""LU — SSOR solver with pipelined wavefront sweeps.

The n^3 grid sits on a 2D process grid.  Every SSOR iteration performs a
lower-triangular sweep (dependencies flow from the north and west
neighbours, k-plane by k-plane) and an upper-triangular sweep (south and
east).  Each plane's interface is ~``5 * 8 * n/sqrt(P)`` bytes — the
~1 kB messages of Table 2 — and LU sends *many* of them (1.2 M for
class B on 16 ranks), but the pipeline keeps the WAN latency off the
critical path, which is why LU holds up well on the grid (Fig. 12) and
why MPICH2 does comparatively well on it (Fig. 10).
"""

from __future__ import annotations

from repro.npb.common import (
    PROBLEM,
    grid_2d,
    per_rank_flops,
    sampled_loop,
    validate_config,
)


def make_program(cls: str, nprocs: int, sample_iters=None):
    validate_config("lu", cls, nprocs)
    params = PROBLEM["lu"][cls]
    n, itmax = params["n"], params["itmax"]
    rows, cols = grid_2d(nprocs)
    nz = n
    # interface of one k-plane: 5 solution components along the subdomain edge
    plane_bytes = max(64, 5 * 8 * (n // max(rows, cols)))
    flops_per_plane = per_rank_flops("lu", cls, nprocs) / (itmax * 2 * nz)

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        row, col = divmod(rank, cols)
        north = rank - cols if row > 0 else None
        south = rank + cols if row < rows - 1 else None
        west = rank - 1 if col > 0 else None
        east = rank + 1 if col < cols - 1 else None

        def sweep(recv_a, recv_b, send_a, send_b):
            for _k in range(nz):
                if recv_a is not None:
                    yield from comm.recv(recv_a, 1)
                if recv_b is not None:
                    yield from comm.recv(recv_b, 1)
                yield from ctx.compute(flops_per_plane)
                if send_a is not None:
                    yield from comm.send(send_a, plane_bytes, tag=1)
                if send_b is not None:
                    yield from comm.send(send_b, plane_bytes, tag=1)

        def iteration(_it):
            # lower-triangular sweep: data flows from north+west
            yield from sweep(north, west, south, east)
            # upper-triangular sweep: data flows from south+east
            yield from sweep(south, east, north, west)

        yield from sampled_loop(ctx, itmax, sample_iters, iteration)
        # residual norms at the end (5 components)
        yield from comm.allreduce(None, nbytes=40)

    return program


def make_verify_program(nprocs: int, nz: int = 6):
    """Wavefront dependency check: each rank's block value must equal the
    weighted sum of everything north-west of it, which requires the sweep
    messages to flow in exactly the dependency order."""
    rows, cols = grid_2d(nprocs)

    def expected_value(row, col):
        # value(r,c) = 1 + value(north) + value(west), nz accumulations
        table = {}
        for r in range(rows):
            for c in range(cols):
                table[(r, c)] = 1.0 + table.get((r - 1, c), 0.0) + table.get(
                    (r, c - 1), 0.0
                )
        return table[(row, col)] * nz

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        row, col = divmod(rank, cols)
        north = rank - cols if row > 0 else None
        south = rank + cols if row < rows - 1 else None
        west = rank - 1 if col > 0 else None
        east = rank + 1 if col < cols - 1 else None
        total = 0.0
        for _k in range(nz):
            from_north = 0.0
            from_west = 0.0
            if north is not None:
                from_north, _ = yield from comm.recv(north, 1)
            if west is not None:
                from_west, _ = yield from comm.recv(west, 1)
            value = 1.0 + from_north + from_west
            total += value
            if south is not None:
                yield from comm.send(south, 48, tag=1, payload=value)
            if east is not None:
                yield from comm.send(east, 48, tag=1, payload=value)
        return total == expected_value(row, col)

    return program
