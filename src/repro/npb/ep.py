"""EP — Embarrassingly Parallel.

Generates 2^m Gaussian pairs by the Marsaglia polar method and counts
them per annulus; the only communication is three tiny allreduces at the
end (the sums sx/sy and the 10-bin count table q).  Table 2: a handful of
8 B and 80 B messages — EP is the paper's "almost no communication"
yardstick (grid relative performance ≈ 1 in Fig. 12).
"""

from __future__ import annotations

import numpy as np

from repro.mpi.constants import SUM
from repro.npb.common import PROBLEM, per_rank_flops, validate_config, verify_rng


def make_program(cls: str, nprocs: int, sample_iters=None):
    validate_config("ep", cls, nprocs)
    flops = per_rank_flops("ep", cls, nprocs)

    def program(ctx):
        # The whole kernel: local random-pair generation and tallying.
        yield from ctx.compute(flops)
        # Global sums: sx, sy (8 B each) and the annulus counts q (10 doubles).
        yield from ctx.comm.allreduce(0.0, nbytes=8, op=SUM)
        yield from ctx.comm.allreduce(0.0, nbytes=8, op=SUM)
        yield from ctx.comm.allreduce(None, nbytes=80, op=SUM)

    return program


def make_verify_program(nprocs: int, pairs_per_rank: int = 4000):
    """Real math at small scale: each rank draws Gaussian pairs and tallies
    annulus counts; the allreduced table must equal the serial tally."""

    def serial_counts() -> np.ndarray:
        counts = np.zeros(10)
        for rank in range(nprocs):
            rng = verify_rng("ep", rank)
            x = rng.uniform(-1, 1, pairs_per_rank)
            y = rng.uniform(-1, 1, pairs_per_rank)
            t = x * x + y * y
            ok = (t <= 1.0) & (t > 0)
            gx = x[ok] * np.sqrt(-2 * np.log(t[ok]) / t[ok])
            gy = y[ok] * np.sqrt(-2 * np.log(t[ok]) / t[ok])
            bins = np.maximum(np.abs(gx), np.abs(gy)).astype(int).clip(0, 9)
            counts += np.bincount(bins, minlength=10)
        return counts

    expected = serial_counts()

    def program(ctx):
        rng = verify_rng("ep", ctx.rank)
        x = rng.uniform(-1, 1, pairs_per_rank)
        y = rng.uniform(-1, 1, pairs_per_rank)
        t = x * x + y * y
        ok = (t <= 1.0) & (t > 0)
        gx = x[ok] * np.sqrt(-2 * np.log(t[ok]) / t[ok])
        gy = y[ok] * np.sqrt(-2 * np.log(t[ok]) / t[ok])
        bins = np.maximum(np.abs(gx), np.abs(gy)).astype(int).clip(0, 9)
        counts = np.bincount(bins, minlength=10).astype(float)
        total = yield from ctx.comm.allreduce(counts, nbytes=counts.nbytes, op=SUM)
        return bool(np.array_equal(total, expected))

    return program
