"""NPB suite runner: the paper's methodology around the eight kernels.

The paper executes each NPB five times and keeps the best time (§4.3);
our simulator is deterministic so one run suffices, but ``repeats`` is
supported for runs that perturb placement or seeds.  A per-run ``timeout``
reproduces the MPICH-Madeleine BT/SP "application timeout" (encoded as
``impl.known_failures`` — the paper observed the hang, its root cause was
never published, so the model records the fact rather than inventing a
mechanism).

A known failure is no longer a silent ``inf``: :func:`run_npb` attaches a
:class:`KnownFailure` that pins the hang point.  A short telemetry probe
(the same kernel, two sampled iterations, under a *nested* span session
so the caller's telemetry is untouched) replays the communication
schedule and reports the last collective the run enters — the operation
the documented timeout cannot get past — with its algorithm and virtual
entry time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import WorkloadError
from repro.mpi.runtime import MpiJob
from repro.mpi.tracing import MessageTrace
from repro.net.topology import Network, Node
from repro.npb import cg, ep, ft, is_, lu, mg, spbt
from repro.npb.common import DEFAULT_SAMPLE_ITERS, validate_config
from repro.obs import runtime as _obs

_FACTORIES: dict[str, Callable] = {
    "ep": ep.make_program,
    "cg": cg.make_program,
    "mg": mg.make_program,
    "lu": lu.make_program,
    "sp": spbt.make_sp_program,
    "bt": spbt.make_bt_program,
    "is": is_.make_program,
    "ft": ft.make_program,
}

_VERIFIERS: dict[str, Callable] = {
    "ep": ep.make_verify_program,
    "cg": cg.make_verify_program,
    "mg": mg.make_verify_program,
    "lu": lu.make_verify_program,
    "sp": spbt.make_verify_program,
    "bt": spbt.make_verify_program,
    "is": is_.make_verify_program,
    "ft": ft.make_verify_program,
}


def get_benchmark(name: str) -> Callable:
    """The timing-program factory for a benchmark name."""
    try:
        return _FACTORIES[name.lower()]
    except KeyError:
        raise WorkloadError(f"unknown NPB benchmark {name!r}") from None


def get_verifier(name: str) -> Callable:
    try:
        return _VERIFIERS[name.lower()]
    except KeyError:
        raise WorkloadError(f"unknown NPB benchmark {name!r}") from None


@dataclass(frozen=True)
class KnownFailure:
    """Structured record of a documented hang (§4.3).

    The paper reports MPICH-Madeleine timing out on BT and SP without a
    published root cause; this record states *where* in the communication
    schedule the timeout bites, derived from a telemetry probe rather
    than invented: the last collective the benchmark enters (and, per the
    observation, never completes)."""

    impl_name: str
    benchmark: str
    #: the collective primitive in flight at the hang point ("(none)"
    #: when the kernel issues no collectives at all)
    collective: str
    #: the algorithm the implementation model selected for it
    algorithm: str
    #: virtual seconds into the probe run when that collective is entered
    enters_at: float
    #: the probe run's full makespan (virtual seconds)
    probe_makespan: float

    def describe(self) -> str:
        if self.collective == "(none)":
            return (
                f"{self.benchmark} on {self.impl_name}: documented timeout "
                "(no collective in the schedule to pin it to)"
            )
        return (
            f"{self.benchmark} on {self.impl_name}: documented timeout; "
            f"the final {self.collective} ({self.algorithm}) entered at "
            f"t={self.enters_at:.4f}s of {self.probe_makespan:.4f}s "
            "never completes"
        )


@dataclass
class NpbResult:
    """Outcome of one benchmark execution."""

    name: str
    cls: str
    nprocs: int
    impl_name: str
    time: float  # virtual seconds; inf when timed out / known failure
    timed_out: bool
    trace: Optional[MessageTrace]
    #: set on the known-failure path: where the documented hang bites
    failure: Optional[KnownFailure] = None

    @property
    def completed(self) -> bool:
        return math.isfinite(self.time)


_failure_memo: dict[tuple, KnownFailure] = {}


def clear_failure_memo() -> None:
    _failure_memo.clear()


def locate_known_failure(
    name: str,
    cls: str,
    network: Network,
    impl,
    placement: list[Node],
    sysctls=None,
    seed: int = 0,
) -> KnownFailure:
    """Pin a documented hang to a point in the communication schedule.

    Replays the kernel with two sampled iterations under a nested span
    session (the ambient session, if any, sees nothing) and reads back
    rank 0's collective spans; the last one entered is the hang point.
    Memoised per (benchmark, class, implementation, placement) — the
    probe is deterministic, so one replay per configuration suffices.
    """
    key = (name, cls, impl.name, tuple(node.name for node in placement))
    hit = _failure_memo.get(key)
    if hit is not None:
        return hit
    program = get_benchmark(name)(cls, len(placement), sample_iters=2)
    with _obs.session(_obs.TelemetryConfig(spans=True, metrics=False)) as sess:
        job = MpiJob(network, impl, placement, sysctls=sysctls, seed=seed)
        run = job.run(program)
        events = sess.tracks[_obs.DEFAULT_TRACK].events
    colls = [
        e
        for e in events
        if e[0] == "X" and e[4] == "mpi.collective" and e[5] == "rank0"
    ]
    if colls:
        last = max(colls, key=lambda e: e[1])
        op = last[3].removeprefix("coll.")
        algorithm = (last[6] or {}).get("algorithm", "?")
        failure = KnownFailure(
            impl.name, name, op, algorithm, last[1], run.makespan
        )
    else:
        failure = KnownFailure(
            impl.name, name, "(none)", "", run.makespan, run.makespan
        )
    _failure_memo[key] = failure
    return failure


def run_npb(
    name: str,
    cls: str,
    network: Network,
    impl,
    placement: list[Node],
    sysctls=None,
    sample_iters: "int | None | str" = "default",
    timeout: Optional[float] = None,
    honor_known_failures: bool = True,
    seed: int = 0,
    trace: bool = False,
) -> NpbResult:
    """Run one NPB kernel on the given testbed and implementation."""
    name = name.lower()
    nprocs = len(placement)
    validate_config(name, cls, nprocs)

    if honor_known_failures and name in impl.known_failures:
        failure = locate_known_failure(
            name, cls, network, impl, placement, sysctls=sysctls, seed=seed
        )
        return NpbResult(name, cls, nprocs, impl.name, math.inf, True, None, failure)

    if sample_iters == "default":
        sample_iters = DEFAULT_SAMPLE_ITERS[name]
    program = get_benchmark(name)(cls, nprocs, sample_iters=sample_iters)
    job = MpiJob(network, impl, placement, sysctls=sysctls, trace=trace, seed=seed)
    result = job.run(program, timeout=timeout)
    time = math.inf if result.timed_out else result.makespan
    return NpbResult(
        name, cls, nprocs, impl.name, time, result.timed_out, result.trace if trace else None
    )


def run_suite(
    names,
    cls: str,
    network: Network,
    impl,
    placement: list[Node],
    **kwargs,
) -> dict[str, NpbResult]:
    """Run several kernels with one configuration; returns name -> result."""
    return {
        name: run_npb(name, cls, network, impl, placement, **kwargs)
        for name in names
    }
