"""NPB suite runner: the paper's methodology around the eight kernels.

The paper executes each NPB five times and keeps the best time (§4.3);
our simulator is deterministic so one run suffices, but ``repeats`` is
supported for runs that perturb placement or seeds.  A per-run ``timeout``
reproduces the MPICH-Madeleine BT/SP "application timeout" (encoded as
``impl.known_failures`` — the paper observed the hang, its root cause was
never published, so the model records the fact rather than inventing a
mechanism).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import WorkloadError
from repro.mpi.runtime import MpiJob
from repro.mpi.tracing import MessageTrace
from repro.net.topology import Network, Node
from repro.npb import cg, ep, ft, is_, lu, mg, spbt
from repro.npb.common import DEFAULT_SAMPLE_ITERS, validate_config

_FACTORIES: dict[str, Callable] = {
    "ep": ep.make_program,
    "cg": cg.make_program,
    "mg": mg.make_program,
    "lu": lu.make_program,
    "sp": spbt.make_sp_program,
    "bt": spbt.make_bt_program,
    "is": is_.make_program,
    "ft": ft.make_program,
}

_VERIFIERS: dict[str, Callable] = {
    "ep": ep.make_verify_program,
    "cg": cg.make_verify_program,
    "mg": mg.make_verify_program,
    "lu": lu.make_verify_program,
    "sp": spbt.make_verify_program,
    "bt": spbt.make_verify_program,
    "is": is_.make_verify_program,
    "ft": ft.make_verify_program,
}


def get_benchmark(name: str) -> Callable:
    """The timing-program factory for a benchmark name."""
    try:
        return _FACTORIES[name.lower()]
    except KeyError:
        raise WorkloadError(f"unknown NPB benchmark {name!r}") from None


def get_verifier(name: str) -> Callable:
    try:
        return _VERIFIERS[name.lower()]
    except KeyError:
        raise WorkloadError(f"unknown NPB benchmark {name!r}") from None


@dataclass
class NpbResult:
    """Outcome of one benchmark execution."""

    name: str
    cls: str
    nprocs: int
    impl_name: str
    time: float  # virtual seconds; inf when timed out / known failure
    timed_out: bool
    trace: Optional[MessageTrace]

    @property
    def completed(self) -> bool:
        return math.isfinite(self.time)


def run_npb(
    name: str,
    cls: str,
    network: Network,
    impl,
    placement: list[Node],
    sysctls=None,
    sample_iters: "int | None | str" = "default",
    timeout: Optional[float] = None,
    honor_known_failures: bool = True,
    seed: int = 0,
    trace: bool = False,
) -> NpbResult:
    """Run one NPB kernel on the given testbed and implementation."""
    name = name.lower()
    nprocs = len(placement)
    validate_config(name, cls, nprocs)

    if honor_known_failures and name in impl.known_failures:
        return NpbResult(name, cls, nprocs, impl.name, math.inf, True, None)

    if sample_iters == "default":
        sample_iters = DEFAULT_SAMPLE_ITERS[name]
    program = get_benchmark(name)(cls, nprocs, sample_iters=sample_iters)
    job = MpiJob(network, impl, placement, sysctls=sysctls, trace=trace, seed=seed)
    result = job.run(program, timeout=timeout)
    time = math.inf if result.timed_out else result.makespan
    return NpbResult(
        name, cls, nprocs, impl.name, time, result.timed_out, result.trace if trace else None
    )


def run_suite(
    names,
    cls: str,
    network: Network,
    impl,
    placement: list[Node],
    **kwargs,
) -> dict[str, NpbResult]:
    """Run several kernels with one configuration; returns name -> result."""
    return {
        name: run_npb(name, cls, network, impl, placement, **kwargs)
        for name in names
    }
