"""CG — Conjugate Gradient (unstructured sparse matvec).

NPB's CG lays the P ranks out as an ``nprows x npcols`` grid over the
sparse matrix.  Every inner CG iteration (cgitmax = 25, plus one extra
matvec per outer iteration) does:

* the matvec reduction along the processor row: log2(npcols) exchanges
  of the partial result vector (~``8 * na / nprows`` bytes — the 147 kB
  messages of Table 2 for class B on 16 ranks),
* the transpose exchange with the mirror rank (same size),
* two dot products: log2(P) pairs of 8 B exchanges.

This mix of *many small* and *some large* messages is why CG suffers on
the grid (Fig. 12: among the worst relative performances — the 8 B
exchanges pay the full 5.8 ms one way).
"""

from __future__ import annotations

import numpy as np

from repro.mpi.constants import SUM
from repro.npb.common import (
    PROBLEM,
    per_rank_flops,
    phase,
    sampled_loop,
    validate_config,
    verify_rng,
)

CGITMAX = 25


def _layout(nprocs: int) -> tuple[int, int]:
    """NPB CG: npcols = nprows or 2*nprows (power-of-two nprocs)."""
    log2 = nprocs.bit_length() - 1
    nprows = 1 << (log2 // 2)
    npcols = nprocs // nprows
    return nprows, npcols


def make_program(cls: str, nprocs: int, sample_iters=None):
    validate_config("cg", cls, nprocs)
    params = PROBLEM["cg"][cls]
    na, niter = params["na"], params["niter"]
    nprows, npcols = _layout(nprocs)
    vec_bytes = max(8, 8 * na // nprows)
    flops_per_inner = per_rank_flops("cg", cls, nprocs) / (niter * (CGITMAX + 1))

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        # Column-major layout (as in the NPB source): consecutive ranks sit
        # in the same processor *column*, so on a split placement the
        # row-reduction partners and the transpose cross the WAN — the
        # paper's CG is among the worst grid performers for this reason.
        my_col, my_row = divmod(rank, nprows)
        # transpose partner (exchange_proc in the NPB source)
        transpose = (rank % nprows) * npcols + rank // nprows if nprows == npcols else rank

        def row_reduce():
            # row-wise reduction of the partial matvec result
            step = 1
            while step < npcols:
                partner = (my_col ^ step) * nprows + my_row
                if partner != rank:
                    yield from comm.sendrecv(partner, vec_bytes, src=partner)
                step <<= 1

        def transpose_exchange():
            if transpose != rank:
                yield from comm.sendrecv(transpose, vec_bytes, src=transpose)

        def dot_products():
            # two dot products (rho, and p.q): log2(npcols) 8 B exchanges each
            for _ in range(2):
                step = 1
                while step < npcols:
                    partner = (my_col ^ step) * nprows + my_row
                    if partner != rank:
                        yield from comm.sendrecv(partner, 8, src=partner)
                    step <<= 1

        def inner_iteration():
            # sparse matvec + vector updates
            yield from phase(ctx, "compute", ctx.compute(flops_per_inner))
            yield from phase(ctx, "row_reduce", row_reduce())
            yield from phase(ctx, "transpose", transpose_exchange())
            yield from phase(ctx, "dot_products", dot_products())

        def residual():
            # ||r|| for the residual report: one more 8 B reduction
            yield from comm.allreduce(0.0, nbytes=8, op=SUM)

        def outer_iteration(_it):
            for _ in range(CGITMAX + 1):
                yield from inner_iteration()
            yield from phase(ctx, "residual", residual())

        yield from sampled_loop(ctx, niter, sample_iters, outer_iteration)

    return program


def make_verify_program(nprocs: int, n: int = 64, iters: int = 30):
    """A real distributed CG: solve ``A x = b`` for a small SPD matrix with
    row-block partitioning; the distributed residual must match a serial
    CG run and the solution must approach ``numpy.linalg.solve``."""
    rng = verify_rng("cg")
    m = rng.standard_normal((n, n))
    a = m @ m.T + n * np.eye(n)  # SPD, well conditioned
    b = rng.standard_normal(n)
    x_exact = np.linalg.solve(a, b)
    rows_per = n // nprocs

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        lo, hi = rank * rows_per, (rank + 1) * rows_per if rank < nprocs - 1 else n
        a_local = a[lo:hi]
        x = np.zeros(n)
        r = b.copy()
        p = r.copy()
        rho = float(r @ r)
        for _ in range(iters):
            # distributed matvec: everyone needs all of p -> allgather of
            # local q slices after local compute
            q_local = a_local @ p
            blocks = yield from comm.allgather(q_local, nbytes_each=q_local.nbytes)
            q = np.concatenate(blocks)
            pq = yield from comm.allreduce(float(p[lo:hi] @ q[lo:hi]), nbytes=8, op=SUM)
            alpha = rho / pq
            x = x + alpha * p
            r = r - alpha * q
            rho_new = yield from comm.allreduce(float(r[lo:hi] @ r[lo:hi]), nbytes=8, op=SUM)
            p = r + (rho_new / rho) * p
            rho = rho_new
        return float(np.linalg.norm(x - x_exact) / np.linalg.norm(x_exact))

    return program
