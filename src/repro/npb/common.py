"""Shared NPB infrastructure: problem classes, op counts, process grids.

Operation counts are the published per-benchmark totals (in Gflop, whole
job); they set the compute/communication ratio, which is what the paper's
Figures 10-13 depend on.  Exact absolute agreement with the 2007 testbed
is not a goal (see DESIGN.md §5) — the counts below are the standard NPB
reference values rounded to three digits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.obs import runtime as _obs
from repro.sim.rng import RngRegistry

#: master seed of every verify-mode problem-data stream
NPB_VERIFY_SEED = 2007


def verify_rng(kernel: str, rank: Optional[int] = None) -> np.random.Generator:
    """A *fresh* deterministic stream for verify-mode problem data.

    Each call returns a new generator at the start of the named stream, so
    the serial reference computation and the per-rank distributed one can
    independently draw identical data — the property the verify programs'
    bit-exact comparisons rely on.  All NPB randomness goes through here
    (DET005): streams are named ``npb.<kernel>.verify[.rank<r>]`` under the
    single master seed :data:`NPB_VERIFY_SEED`.
    """
    name = f"npb.{kernel}.verify" if rank is None else f"npb.{kernel}.verify.rank{rank}"
    return RngRegistry(seed=NPB_VERIFY_SEED).stream(name)

BENCHMARK_NAMES = ("ep", "cg", "mg", "lu", "sp", "bt", "is", "ft")
CLASS_NAMES = ("S", "W", "A", "B", "C")

#: Table 2 column "Type of comm."
COMM_TYPE = {
    "ep": "P. to P.",
    "cg": "P. to P.",
    "mg": "P. to P.",
    "lu": "P. to P.",
    "sp": "P. to P.",
    "bt": "P. to P.",
    "is": "Collective",
    "ft": "Collective",
}

#: fraction of a node's calibrated flop rate each kernel sustains.
#: NPB kernels are famously memory-bound to different degrees: CG and IS
#: sustain ~10 % of nominal, the structured solvers 30-40 %.  These factors
#: put the class-B single/16-node times in the range 2007 Opteron clusters
#: actually reported and set the compute/communication ratios that Figures
#: 12 and 13 depend on.
EFFICIENCY: dict[str, float] = {
    "ep": 0.45,
    "cg": 0.12,
    "mg": 0.22,
    "lu": 0.40,
    "sp": 0.33,
    "bt": 0.40,
    "is": 0.08,
    "ft": 0.33,
}

#: total floating point work per run (Gflop), whole job.
FLOP_COUNTS: dict[str, dict[str, float]] = {
    "ep": {"S": 0.42, "W": 0.84, "A": 6.72, "B": 26.9, "C": 107.6},
    "cg": {"S": 0.066, "W": 0.39, "A": 1.51, "B": 54.9, "C": 143.3},
    "mg": {"S": 0.008, "W": 0.51, "A": 3.63, "B": 18.5, "C": 155.7},
    "lu": {"S": 0.102, "W": 9.1, "A": 64.6, "B": 119.3, "C": 479.6},
    "sp": {"S": 0.10, "W": 8.1, "A": 102.0, "B": 314.5, "C": 1253.0},
    "bt": {"S": 0.17, "W": 7.8, "A": 168.3, "B": 466.1, "C": 1825.1},
    "is": {"S": 0.003, "W": 0.05, "A": 0.78, "B": 3.30, "C": 13.2},
    "ft": {"S": 0.18, "W": 2.0, "A": 7.16, "B": 92.1, "C": 376.0},
}

#: problem geometry per class (benchmark-specific meanings, see modules).
PROBLEM = {
    "ep": {
        "S": {"m": 24}, "W": {"m": 25}, "A": {"m": 28}, "B": {"m": 30},
        "C": {"m": 32},
    },
    "cg": {
        "S": {"na": 1400, "nonzer": 7, "niter": 15},
        "W": {"na": 7000, "nonzer": 8, "niter": 15},
        "A": {"na": 14000, "nonzer": 11, "niter": 15},
        "B": {"na": 75000, "nonzer": 13, "niter": 75},
        "C": {"na": 150000, "nonzer": 15, "niter": 75},
    },
    "mg": {
        "S": {"n": 32, "nit": 4},
        "W": {"n": 128, "nit": 4},
        "A": {"n": 256, "nit": 4},
        "B": {"n": 256, "nit": 20},
        "C": {"n": 512, "nit": 20},
    },
    "lu": {
        "S": {"n": 12, "itmax": 50},
        "W": {"n": 33, "itmax": 300},
        "A": {"n": 64, "itmax": 250},
        "B": {"n": 102, "itmax": 250},
        "C": {"n": 162, "itmax": 250},
    },
    "sp": {
        "S": {"n": 12, "niter": 100},
        "W": {"n": 36, "niter": 400},
        "A": {"n": 64, "niter": 400},
        "B": {"n": 102, "niter": 400},
        "C": {"n": 162, "niter": 400},
    },
    "bt": {
        "S": {"n": 12, "niter": 60},
        "W": {"n": 24, "niter": 200},
        "A": {"n": 64, "niter": 200},
        "B": {"n": 102, "niter": 200},
        "C": {"n": 162, "niter": 200},
    },
    "is": {
        "S": {"total_keys_log2": 16, "niter": 10},
        "W": {"total_keys_log2": 20, "niter": 10},
        "A": {"total_keys_log2": 23, "niter": 10},
        "B": {"total_keys_log2": 25, "niter": 10},
        "C": {"total_keys_log2": 27, "niter": 10},
    },
    "ft": {
        "S": {"nx": 64, "ny": 64, "nz": 64, "niter": 6},
        "W": {"nx": 128, "ny": 128, "nz": 32, "niter": 6},
        "A": {"nx": 256, "ny": 256, "nz": 128, "niter": 6},
        "B": {"nx": 512, "ny": 256, "nz": 256, "niter": 20},
        "C": {"nx": 512, "ny": 512, "nz": 512, "niter": 20},
    },
}

#: default number of simulated iterations when sampling (per benchmark);
#: chosen so one class-B run stays under ~10^5 messages.
DEFAULT_SAMPLE_ITERS = {
    "ep": None,  # no iteration loop
    "cg": 5,     # outer iterations
    "mg": 5,
    "lu": 20,
    "sp": 20,
    "bt": 20,
    "is": 4,
    "ft": 5,
}


def validate_config(name: str, cls: str, nprocs: int) -> None:
    """Reject configurations the real NPB would reject."""
    if name not in BENCHMARK_NAMES:
        raise WorkloadError(f"unknown NPB benchmark {name!r}; have {BENCHMARK_NAMES}")
    if cls not in CLASS_NAMES:
        raise WorkloadError(f"unknown problem class {cls!r}; have {CLASS_NAMES}")
    if nprocs < 1:
        raise WorkloadError("nprocs must be >= 1")
    if name in ("cg", "ft", "is", "ep", "mg", "lu") and nprocs & (nprocs - 1):
        raise WorkloadError(f"{name.upper()} requires a power-of-two rank count")
    if name in ("sp", "bt"):
        root = int(round(nprocs**0.5))
        if root * root != nprocs:
            raise WorkloadError(f"{name.upper()} requires a square rank count")


def grid_2d(nprocs: int) -> tuple[int, int]:
    """Near-square 2D factorisation (rows, cols), rows >= cols."""
    rows = int(nprocs**0.5)
    while nprocs % rows:
        rows -= 1
    return max(rows, nprocs // rows), min(rows, nprocs // rows)


def grid_3d(nprocs: int) -> tuple[int, int, int]:
    """Near-cubic 3D factorisation."""
    best = (nprocs, 1, 1)
    best_score = nprocs  # max dim; smaller is better
    for a in range(1, nprocs + 1):
        if nprocs % a:
            continue
        rest = nprocs // a
        for b in range(1, rest + 1):
            if rest % b:
                continue
            c = rest // b
            dims = tuple(sorted((a, b, c), reverse=True))
            if dims[0] < best_score:
                best, best_score = dims, dims[0]
    return best


def sampled_loop(ctx, total_iters: int, sample_iters: Optional[int], body: Callable):
    """Run ``body(it)`` for a sample of the iterations, extrapolate the rest.

    ``body`` is a generator function.  With ``sample_iters`` None or >=
    ``total_iters`` every iteration runs.  Otherwise the measured mean
    iteration time stands in for the remaining ones (steady-state NPB
    iterations are statistically identical).
    """
    if total_iters < 0:
        raise WorkloadError(f"negative iteration count {total_iters}")
    n = total_iters if sample_iters is None else min(sample_iters, total_iters)
    start = ctx.wtime()
    for it in range(n):
        yield from body(it)
    remaining = total_iters - n
    if remaining > 0 and n > 0:
        elapsed = ctx.wtime() - start
        yield from ctx.compute_time(elapsed / n * remaining)


def phase(ctx, name: str, body):
    """Wrap generator ``body`` in an ``npb.phase.<name>`` span.

    Call as ``yield from phase(ctx, "transpose", transpose())``.  With
    telemetry off this returns ``body`` untouched — the caller delegates
    straight into it, no wrapper frame, no record.  With spans on, the
    phase is timed on this rank's lane; the span is recorded only when
    the body runs to completion (an abandoned generator records nothing,
    so a timed-out job never emits a partial phase).
    """
    sess = _obs.ACTIVE
    if sess is None or not sess.spans:
        return body
    return _traced_phase(ctx, name, body, sess)


def _traced_phase(ctx, name: str, body, sess):
    t_start = ctx.env.now
    result = yield from body
    sess.complete(
        t_start,
        ctx.env.now - t_start,
        f"npb.phase.{name}",
        "npb.phase",
        f"rank{ctx.rank}",
        None,
    )
    return result


def per_rank_flops(name: str, cls: str, nprocs: int) -> float:
    """Effective flop each rank must execute: the kernel's operation count
    inflated by its sustained-efficiency factor, so that charging it at
    the node's calibrated rate yields realistic kernel times."""
    return FLOP_COUNTS[name][cls] * 1e9 / nprocs / EFFICIENCY[name]
