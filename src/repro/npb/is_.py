"""IS — Integer Sort (bucket sort of uniform random keys).

Per iteration (10 in NPB): a small control allreduce (~1 kB), the
**key-density reduction** — the paper's Table 2 shows it as the dominant
collective, one ~30 MB (class A) message per rank per iteration
(``4 * total_keys`` bytes) — and the key redistribution ``alltoallv``.
GridMPI's bandwidth-optimal Rabenseifner allreduce halves the reduction's
volume, which is its big IS win in Fig. 10; the alltoallv is *not*
optimised ("GridMPI only optimizes one of the primitives used by IS"),
which is why IS stays poor on the grid in Fig. 12.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.constants import SUM
from repro.npb.common import (
    PROBLEM,
    per_rank_flops,
    phase,
    sampled_loop,
    validate_config,
    verify_rng,
)

NUM_BUCKETS = 256  # histogram payload ~1 kB of int32


def make_program(cls: str, nprocs: int, sample_iters=None):
    validate_config("is", cls, nprocs)
    params = PROBLEM["is"][cls]
    niter = params["niter"]
    total_keys = 1 << params["total_keys_log2"]
    key_bytes_per_pair = max(4, 4 * total_keys // (nprocs * nprocs))
    flops_per_iter = per_rank_flops("is", cls, nprocs) / niter

    density_bytes = 4 * total_keys  # Table 2: ~30 MB per rank for class A

    def program(ctx):
        comm = ctx.comm

        def control():
            # small control histogram
            yield from comm.allreduce(None, nbytes=4 * NUM_BUCKETS, op=SUM)

        def density():
            # key-density reduction: the dominant collective (Table 2)
            yield from comm.allreduce(None, nbytes=density_bytes, op=SUM)

        def redistribute():
            # key redistribution (uniform keys: balanced alltoallv)
            sizes = [key_bytes_per_pair] * comm.size
            yield from comm.alltoallv(sizes)

        def iteration(_it):
            # local counting
            yield from phase(ctx, "compute", ctx.compute(flops_per_iter))
            yield from phase(ctx, "control", control())
            yield from phase(ctx, "density", density())
            yield from phase(ctx, "redistribute", redistribute())

        def residual():
            # full verification: ranking check via one more small allreduce
            yield from comm.allreduce(0.0, nbytes=8, op=SUM)

        yield from sampled_loop(ctx, niter, sample_iters, iteration)
        yield from phase(ctx, "residual", residual())

    return program


def make_verify_program(nprocs: int, keys_per_rank: int = 2000, max_key: int = 1 << 11):
    """A real distributed bucket sort: after the histogram allreduce and
    the alltoallv redistribution, the concatenation of per-rank sorted
    runs must equal the serial sort of all keys."""

    def all_keys():
        return np.concatenate(
            [
                verify_rng("is", r).integers(0, max_key, keys_per_rank)
                for r in range(nprocs)
            ]
        )

    expected = np.sort(all_keys())

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        keys = verify_rng("is", rank).integers(0, max_key, keys_per_rank)
        # histogram over nprocs buckets (key range split evenly)
        edges = np.linspace(0, max_key, nprocs + 1).astype(np.int64)
        hist = np.histogram(keys, bins=edges)[0].astype(np.int64)
        yield from comm.allreduce(hist, nbytes=hist.nbytes, op=SUM)
        # split keys per destination bucket and exchange
        owners = np.digitize(keys, edges[1:-1])
        payloads = [keys[owners == d] for d in range(nprocs)]
        sizes = [4 * len(p) for p in payloads]
        received, _ = yield from comm.alltoallv(sizes, payloads)
        mine = np.sort(np.concatenate([np.asarray(r) for r in received]))
        # reassemble globally and compare with the serial sort
        blocks = yield from comm.allgather(mine, nbytes_each=mine.nbytes)
        result = np.concatenate(blocks)
        return bool(np.array_equal(result, expected))

    return program
