"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event engine (e.g. reusing a
    triggered event, stepping an empty environment)."""


class NetworkConfigError(ReproError):
    """An invalid network/topology description (unknown node, no route,
    non-positive bandwidth...)."""


class TcpError(ReproError):
    """An invalid TCP configuration or use of a closed connection."""


class MpiError(ReproError):
    """An MPI semantic error (invalid rank, truncation, mismatched
    collective participation...)."""


class MpiTruncationError(MpiError):
    """A receive buffer was smaller than the matched incoming message
    (mirrors ``MPI_ERR_TRUNCATE``)."""


class MpiAbortError(MpiError):
    """Raised in every rank when one rank calls ``comm.abort()``."""


class WorkloadError(ReproError):
    """An invalid workload configuration (unsupported problem class,
    incompatible rank count...)."""


class ExperimentError(ReproError):
    """An experiment was misconfigured or referenced an unknown id."""


class FaultConfigError(ReproError):
    """An invalid fault-injection profile/scenario, or an unknown scenario
    name."""
