"""Legacy setup shim.

The sandbox this project is developed in has no network access and no
``wheel`` package, so PEP 660 editable installs (``pip install -e .``) cannot
build. ``python setup.py develop`` provides the equivalent editable install
using only setuptools. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
